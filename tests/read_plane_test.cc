// Deterministic read-plane tests: snapshot lifetime (a reader holding an
// old generation reads bit-identical results while ticks publish
// successors, and the snapshot frees exactly on last release) and the
// query-result cache (hit/miss/eviction accounting, generation-keyed
// invalidation, k-mismatch bypass, cached == uncached). The concurrent
// half of the proof — readers hammering Search() against live ticks —
// lives in read_plane_concurrency_test.cc.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "index_test_util.h"
#include "stburst/common/random.h"
#include "stburst/index/query_cache.h"
#include "stburst/stream/feed_runtime.h"

namespace stburst {
namespace {

constexpr size_t kStreams = 5;
constexpr size_t kVocab = 40;
constexpr Timestamp kWindow = 5;

Collection MakeSeedCollection() {
  auto c = Collection::Create(2);
  EXPECT_TRUE(c.ok());
  for (size_t s = 0; s < kStreams; ++s) {
    c->AddStream("s" + std::to_string(s), {},
                 Point2D{static_cast<double>(s % 3),
                         static_cast<double>(s / 3)});
  }
  Vocabulary* v = c->mutable_vocabulary();
  for (size_t t = 0; t < kVocab; ++t) v->Intern("term" + std::to_string(t));
  return std::move(*c);
}

Snapshot MakeSnapshot(Rng& rng) {
  Snapshot snap;
  for (StreamId s = 0; s < kStreams; ++s) {
    const size_t docs = 1 + rng.NextUint64(2);
    for (size_t d = 0; d < docs; ++d) {
      SnapshotDocument doc;
      doc.stream = s;
      const size_t len = 2 + rng.NextUint64(4);
      for (size_t i = 0; i < len; ++i) {
        TermId tok = static_cast<TermId>(rng.NextUint64(kVocab));
        if (rng.Bernoulli(0.5)) {
          tok = static_cast<TermId>(tok % (kVocab / 4 + 1));
        }
        doc.tokens.push_back(tok);
      }
      snap.push_back(std::move(doc));
    }
  }
  return snap;
}

FeedRuntimeOptions ServingOptions(size_t cache_entries = 0) {
  FeedRuntimeOptions opts;
  opts.num_threads = 2;
  opts.retention_window = kWindow;
  opts.search_serving = SearchServing::kCombinatorial;
  opts.search_cache_entries = cache_entries;
  opts.miner.stcomb.min_interval_burstiness = 0.05;
  return opts;
}

// A query with a decent chance of postings in the sweep corpus: the low
// term ids, which MakeSnapshot biases half its tokens into.
std::vector<TermId> ProbeQuery() { return {0, 1, 2, 3}; }

TEST(ReadPlane, HeldSnapshotStaysBitIdenticalAcrossGenerations) {
  auto runtime = FeedRuntime::Create(MakeSeedCollection(), ServingOptions());
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  Rng rng(7);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  }

  const std::shared_ptr<const IndexSnapshot> held = runtime->search_snapshot();
  ASSERT_NE(held, nullptr);
  const TopKResult before = ThresholdTopK(held->index, ProbeQuery(), 5);
  // Deep copies to compare bit-for-bit after the runtime moves on.
  const std::vector<Posting> postings_before = held->index.postings(0);
  const size_t total_before = held->index.total_postings();

  // Every ingesting tick publishes a successor; the held snapshot must not
  // move with them.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  }
  const std::shared_ptr<const IndexSnapshot> current =
      runtime->search_snapshot();
  ASSERT_NE(current.get(), held.get());
  EXPECT_EQ(current->generation, held->generation + 3);

  const TopKResult after = ThresholdTopK(held->index, ProbeQuery(), 5);
  EXPECT_EQ(after.generation, before.generation);
  EXPECT_EQ(after.docs, before.docs);
  const std::vector<Posting>& postings_after = held->index.postings(0);
  ASSERT_EQ(postings_after.size(), postings_before.size());
  for (size_t i = 0; i < postings_after.size(); ++i) {
    EXPECT_EQ(postings_after[i].doc, postings_before[i].doc);
    EXPECT_EQ(postings_after[i].score, postings_before[i].score);
  }
  EXPECT_EQ(held->index.total_postings(), total_before);
  EXPECT_EQ(held->generation, before.generation);
}

TEST(ReadPlane, SnapshotFreesOnlyOnLastRelease) {
  auto runtime = FeedRuntime::Create(MakeSeedCollection(), ServingOptions());
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  Rng rng(11);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  }

  std::shared_ptr<const IndexSnapshot> first_holder =
      runtime->search_snapshot();
  std::shared_ptr<const IndexSnapshot> second_holder = first_holder;
  std::weak_ptr<const IndexSnapshot> watcher = first_holder;

  // Two published generations later the runtime holds only the successor;
  // the old snapshot lives purely on the readers' references.
  ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  first_holder.reset();
  EXPECT_FALSE(watcher.expired()) << "snapshot freed while still held";
  second_holder.reset();
  EXPECT_TRUE(watcher.expired()) << "snapshot leaked past its last release";

  // The current snapshot is pinned by the runtime itself even with no
  // outside holders.
  std::weak_ptr<const IndexSnapshot> current_watcher =
      runtime->search_snapshot();
  EXPECT_FALSE(current_watcher.expired());
}

TEST(ReadPlane, SearchIndexAccessorTracksThePublishedSnapshot) {
  auto runtime = FeedRuntime::Create(MakeSeedCollection(), ServingOptions());
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  Rng rng(13);
  ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());

  const std::shared_ptr<const IndexSnapshot> snapshot =
      runtime->search_snapshot();
  EXPECT_EQ(runtime->search_index(), &snapshot->index);
  EXPECT_EQ(snapshot->generation, snapshot->index.generation());
  EXPECT_EQ(snapshot->doc_id_base, runtime->collection().doc_id_base());
  EXPECT_EQ(snapshot->window_start, runtime->window_start());

  ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  EXPECT_NE(runtime->search_index(), &snapshot->index);
}

TEST(ReadPlane, ServingDisabledYieldsNullSnapshot) {
  FeedRuntimeOptions opts;
  opts.num_threads = 1;
  auto runtime = FeedRuntime::Create(MakeSeedCollection(), opts);
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  EXPECT_EQ(runtime->search_snapshot(), nullptr);
  EXPECT_EQ(runtime->search_index(), nullptr);
  const QueryCacheStats stats = runtime->search_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ReadPlane, CreateRejectsCacheWithoutServing) {
  FeedRuntimeOptions opts;
  opts.search_cache_entries = 16;
  auto runtime = FeedRuntime::Create(MakeSeedCollection(), opts);
  EXPECT_FALSE(runtime.ok());
  EXPECT_EQ(runtime.status().code(), StatusCode::kInvalidArgument);
}

// ---- QueryResultCache unit tests (no runtime) ----

TopKResult FakeResult(uint64_t generation, DocId doc) {
  TopKResult r;
  r.docs.push_back(ScoredDoc{doc, 1.0});
  r.generation = generation;
  return r;
}

TEST(QueryCache, HitMissInsertAccounting) {
  QueryResultCache cache(4);
  TopKResult out;
  EXPECT_FALSE(cache.Lookup(1, {5, 6}, 3, &out));
  cache.Insert(1, {5, 6}, 3, FakeResult(1, 42));
  EXPECT_TRUE(cache.Lookup(1, {5, 6}, 3, &out));
  EXPECT_EQ(out.docs.size(), 1u);
  EXPECT_EQ(out.docs[0].doc, 42u);

  const QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(QueryCache, EvictsLeastRecentlyUsed) {
  QueryResultCache cache(2);
  TopKResult out;
  cache.Insert(1, {1}, 3, FakeResult(1, 1));
  cache.Insert(1, {2}, 3, FakeResult(1, 2));
  // Touch {1}: {2} becomes the LRU tail and the next insert evicts it.
  EXPECT_TRUE(cache.Lookup(1, {1}, 3, &out));
  cache.Insert(1, {3}, 3, FakeResult(1, 3));
  EXPECT_TRUE(cache.Lookup(1, {1}, 3, &out));
  EXPECT_FALSE(cache.Lookup(1, {2}, 3, &out));
  EXPECT_TRUE(cache.Lookup(1, {3}, 3, &out));

  const QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(QueryCache, GenerationAndKArePartOfTheKey) {
  QueryResultCache cache(8);
  TopKResult out;
  cache.Insert(1, {1, 2}, 3, FakeResult(1, 1));
  EXPECT_FALSE(cache.Lookup(2, {1, 2}, 3, &out)) << "stale generation served";
  EXPECT_FALSE(cache.Lookup(1, {1, 2}, 5, &out)) << "k mismatch served";
  EXPECT_FALSE(cache.Lookup(1, {2, 1}, 3, &out)) << "term order ignored";
  EXPECT_TRUE(cache.Lookup(1, {1, 2}, 3, &out));
}

// ---- cache behavior through the runtime ----

TEST(ReadPlane, CacheHitsRepeatsAndInvalidatesOnPublish) {
  auto runtime = FeedRuntime::Create(MakeSeedCollection(), ServingOptions(16));
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  Rng rng(17);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  }

  const TopKResult first = runtime->Search(ProbeQuery(), 5);
  const TopKResult second = runtime->Search(ProbeQuery(), 5);
  EXPECT_EQ(second.docs, first.docs);
  EXPECT_EQ(second.generation, first.generation);
  QueryCacheStats stats = runtime->search_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);

  // A publishing tick moves the generation: the cached entry is
  // unreachable (its key embeds the old generation) and the next Search
  // answers from the new snapshot, never the stale entry.
  ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  const TopKResult fresh = runtime->Search(ProbeQuery(), 5);
  EXPECT_EQ(fresh.generation, first.generation + 1);
  EXPECT_EQ(fresh.generation, runtime->search_snapshot()->generation);
  stats = runtime->search_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);

  // Uncached reference over the same snapshot: the cache changed nothing.
  const TopKResult reference =
      ThresholdTopK(runtime->search_snapshot()->index, ProbeQuery(), 5);
  EXPECT_EQ(fresh.docs, reference.docs);
}

TEST(ReadPlane, CacheKMismatchBypassesTheEntry) {
  auto runtime = FeedRuntime::Create(MakeSeedCollection(), ServingOptions(16));
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  Rng rng(19);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(runtime->Tick(MakeSnapshot(rng)).ok());
  }

  const TopKResult top3 = runtime->Search(ProbeQuery(), 3);
  const TopKResult top5 = runtime->Search(ProbeQuery(), 5);
  const QueryCacheStats stats = runtime->search_cache_stats();
  EXPECT_EQ(stats.hits, 0u) << "a top-3 entry must not answer a top-5 query";
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_LE(top3.docs.size(), 3u);
  // The top-3 list is the top-5 prefix — same index, same ordering.
  for (size_t i = 0; i < top3.docs.size(); ++i) {
    EXPECT_EQ(top3.docs[i], top5.docs[i]);
  }
}

TEST(ReadPlane, CachedRuntimeMatchesUncachedTickForTick) {
  auto cached = FeedRuntime::Create(MakeSeedCollection(), ServingOptions(8));
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  auto plain = FeedRuntime::Create(MakeSeedCollection(), ServingOptions(0));
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  Rng cached_rng(23), plain_rng(23);
  const std::vector<std::vector<TermId>> queries = {
      {0, 1}, {2, 3, 4}, {1, 5, 9}, {0, 1}, {7}, {0, 1, 2, 3}};
  for (int tick = 0; tick < 10; ++tick) {
    ASSERT_TRUE(cached->Tick(MakeSnapshot(cached_rng)).ok());
    ASSERT_TRUE(plain->Tick(MakeSnapshot(plain_rng)).ok());
    for (const auto& q : queries) {
      const TopKResult a = cached->Search(q, 4);
      const TopKResult b = plain->Search(q, 4);
      EXPECT_EQ(a.docs, b.docs) << "tick " << tick;
      EXPECT_EQ(a.generation, b.generation) << "tick " << tick;
    }
  }
  // The repeated queries actually exercised the hit path.
  EXPECT_GT(cached->search_cache_stats().hits, 0u);
}

}  // namespace
}  // namespace stburst
