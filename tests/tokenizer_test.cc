// Tests for stream/tokenizer.

#include "stburst/stream/tokenizer.h"

#include <gtest/gtest.h>

namespace stburst {
namespace {

TEST(Tokenizer, SplitsOnNonAlnumAndLowercases) {
  Vocabulary vocab;
  Tokenizer tok;
  auto ids = tok.Tokenize("Hello, World! 42 foo-bar", &vocab);
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(vocab.TermOf(ids[0]), "hello");
  EXPECT_EQ(vocab.TermOf(ids[1]), "world");
  EXPECT_EQ(vocab.TermOf(ids[2]), "42");
  EXPECT_EQ(vocab.TermOf(ids[3]), "foo");
  EXPECT_EQ(vocab.TermOf(ids[4]), "bar");
}

TEST(Tokenizer, PreservesCaseWhenDisabled) {
  TokenizerOptions opts;
  opts.lowercase = false;
  Vocabulary vocab;
  Tokenizer tok(opts);
  auto ids = tok.Tokenize("Obama visits", &vocab);
  EXPECT_EQ(vocab.TermOf(ids[0]), "Obama");
}

TEST(Tokenizer, MinTokenLengthDropsShortTokens) {
  TokenizerOptions opts;
  opts.min_token_length = 3;
  Vocabulary vocab;
  Tokenizer tok(opts);
  auto ids = tok.Tokenize("a an the quick fox", &vocab);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(vocab.TermOf(ids[0]), "the");
  EXPECT_EQ(vocab.TermOf(ids[1]), "quick");
  EXPECT_EQ(vocab.TermOf(ids[2]), "fox");
}

TEST(Tokenizer, StopwordsRemoved) {
  TokenizerOptions opts;
  opts.stopwords = Tokenizer::DefaultStopwords();
  Vocabulary vocab;
  Tokenizer tok(opts);
  auto ids = tok.Tokenize("the earthquake in Chile was strong", &vocab);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(vocab.TermOf(ids[0]), "earthquake");
  EXPECT_EQ(vocab.TermOf(ids[1]), "chile");
  EXPECT_EQ(vocab.TermOf(ids[2]), "strong");
}

TEST(Tokenizer, DuplicatesKeptForFrequency) {
  Vocabulary vocab;
  Tokenizer tok;
  auto ids = tok.Tokenize("gaza gaza ceasefire gaza", &vocab);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[0], ids[3]);
  EXPECT_NE(ids[0], ids[2]);
}

TEST(Tokenizer, TokenizeFrozenDropsUnknownWords) {
  Vocabulary vocab;
  Tokenizer tok;
  tok.Tokenize("swine flu pandemic", &vocab);
  size_t before = vocab.size();
  auto ids = tok.TokenizeFrozen("swine flu unknownword", vocab);
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(vocab.size(), before);  // frozen: nothing interned
}

TEST(Tokenizer, EmptyAndPunctuationOnly) {
  Vocabulary vocab;
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("", &vocab).empty());
  EXPECT_TRUE(tok.Tokenize("..., --- !!!", &vocab).empty());
}

}  // namespace
}  // namespace stburst
