// Tests for stream/tokenizer.

#include "stburst/stream/tokenizer.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "stburst/common/random.h"

namespace stburst {
namespace {

TEST(Tokenizer, SplitsOnNonAlnumAndLowercases) {
  Vocabulary vocab;
  Tokenizer tok;
  auto ids = tok.Tokenize("Hello, World! 42 foo-bar", &vocab);
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(vocab.TermOf(ids[0]), "hello");
  EXPECT_EQ(vocab.TermOf(ids[1]), "world");
  EXPECT_EQ(vocab.TermOf(ids[2]), "42");
  EXPECT_EQ(vocab.TermOf(ids[3]), "foo");
  EXPECT_EQ(vocab.TermOf(ids[4]), "bar");
}

TEST(Tokenizer, PreservesCaseWhenDisabled) {
  TokenizerOptions opts;
  opts.lowercase = false;
  Vocabulary vocab;
  Tokenizer tok(opts);
  auto ids = tok.Tokenize("Obama visits", &vocab);
  EXPECT_EQ(vocab.TermOf(ids[0]), "Obama");
}

TEST(Tokenizer, MinTokenLengthDropsShortTokens) {
  TokenizerOptions opts;
  opts.min_token_length = 3;
  Vocabulary vocab;
  Tokenizer tok(opts);
  auto ids = tok.Tokenize("a an the quick fox", &vocab);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(vocab.TermOf(ids[0]), "the");
  EXPECT_EQ(vocab.TermOf(ids[1]), "quick");
  EXPECT_EQ(vocab.TermOf(ids[2]), "fox");
}

TEST(Tokenizer, StopwordsRemoved) {
  TokenizerOptions opts;
  opts.stopwords = Tokenizer::DefaultStopwords();
  Vocabulary vocab;
  Tokenizer tok(opts);
  auto ids = tok.Tokenize("the earthquake in Chile was strong", &vocab);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(vocab.TermOf(ids[0]), "earthquake");
  EXPECT_EQ(vocab.TermOf(ids[1]), "chile");
  EXPECT_EQ(vocab.TermOf(ids[2]), "strong");
}

TEST(Tokenizer, DuplicatesKeptForFrequency) {
  Vocabulary vocab;
  Tokenizer tok;
  auto ids = tok.Tokenize("gaza gaza ceasefire gaza", &vocab);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[0], ids[3]);
  EXPECT_NE(ids[0], ids[2]);
}

TEST(Tokenizer, TokenizeFrozenDropsUnknownWords) {
  Vocabulary vocab;
  Tokenizer tok;
  tok.Tokenize("swine flu pandemic", &vocab);
  size_t before = vocab.size();
  auto ids = tok.TokenizeFrozen("swine flu unknownword", vocab);
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(vocab.size(), before);  // frozen: nothing interned
}

TEST(Tokenizer, EmptyAndPunctuationOnly) {
  Vocabulary vocab;
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("", &vocab).empty());
  EXPECT_TRUE(tok.Tokenize("..., --- !!!", &vocab).empty());
}

TEST(Tokenizer, OverlongRunsAreDroppedNotTruncated) {
  Vocabulary vocab;
  Tokenizer tok;  // default max_token_length = 64
  std::string text = "ok " + std::string(1 << 20, 'a') + " fine";
  auto ids = tok.Tokenize(text, &vocab);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(vocab.TermOf(ids[0]), "ok");
  EXPECT_EQ(vocab.TermOf(ids[1]), "fine");
  // Dropped, not truncated: no 64-byte prefix was interned.
  EXPECT_EQ(vocab.Lookup(std::string(64, 'a')), kInvalidTerm);
}

TEST(Tokenizer, MaxTokenLengthBoundaryIsInclusive) {
  Vocabulary vocab;
  TokenizerOptions opts;
  opts.max_token_length = 4;
  Tokenizer tok(opts);
  auto ids = tok.Tokenize("abcd abcde abc", &vocab);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(vocab.TermOf(ids[0]), "abcd");
  EXPECT_EQ(vocab.TermOf(ids[1]), "abc");
}

TEST(Tokenizer, ZeroMaxTokenLengthIsUnbounded) {
  Vocabulary vocab;
  TokenizerOptions opts;
  opts.max_token_length = 0;
  Tokenizer tok(opts);
  std::string big(500, 'z');
  auto ids = tok.Tokenize(big, &vocab);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(vocab.TermOf(ids[0]), big);
}

TEST(Tokenizer, EveryByteValueIsSafe) {
  // All 256 byte values, embedded NUL included: bytes outside the ASCII
  // alphanumerics are separators, never UB (<cctype> with a negative plain
  // char is undefined — the ASan leg of CI would catch a regression here).
  std::string all_bytes;
  for (int b = 0; b < 256; ++b) all_bytes.push_back(static_cast<char>(b));
  Vocabulary vocab;
  Tokenizer tok;
  for (TermId id : tok.Tokenize(all_bytes, &vocab)) {
    for (char c : vocab.TermOf(id)) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
    }
  }
  EXPECT_TRUE(tok.Tokenize(std::string("\x80\xff\xfe\x01", 4), &vocab).empty());
  EXPECT_EQ(tok.Tokenize(std::string("a\0b", 3), &vocab).size(), 2u);
}

TEST(Tokenizer, RandomBinaryStreamsNeverProduceInvalidTokens) {
  // Fuzz-shaped: arbitrary binary garbage must yield only bounded,
  // alphanumeric, stopword-free tokens — and identical results via the
  // frozen path.
  Rng rng(97);
  TokenizerOptions opts;
  opts.max_token_length = 16;
  opts.stopwords = Tokenizer::DefaultStopwords();
  Tokenizer tok(opts);
  Vocabulary vocab;
  for (int trial = 0; trial < 50; ++trial) {
    std::string bytes;
    size_t len = rng.NextUint64(2048);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.NextUint64(256)));
    }
    auto ids = tok.Tokenize(bytes, &vocab);
    for (TermId id : ids) {
      const std::string& term = vocab.TermOf(id);
      EXPECT_FALSE(term.empty());
      EXPECT_LE(term.size(), opts.max_token_length);
      EXPECT_EQ(opts.stopwords.count(term), 0u);
    }
    EXPECT_EQ(tok.TokenizeFrozen(bytes, vocab), ids);
  }
}

}  // namespace
}  // namespace stburst
