// Tests for the batch mining engine (core/batch_miner): parallel runs must
// be indistinguishable from the serial per-term pipeline.

#include "stburst/core/batch_miner.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "stburst/common/random.h"
#include "stburst/core/stcomb.h"
#include "stburst/core/stlocal.h"

namespace stburst {
namespace {

Collection MakeRandomCollection(uint64_t seed, size_t num_streams,
                                Timestamp timeline, size_t vocab,
                                size_t num_docs) {
  auto collection = Collection::Create(timeline);
  EXPECT_TRUE(collection.ok());
  Rng rng(seed);
  for (size_t s = 0; s < num_streams; ++s) {
    collection->AddStream("s" + std::to_string(s), {},
                          Point2D{rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  Vocabulary* v = collection->mutable_vocabulary();
  for (size_t t = 0; t < vocab; ++t) v->Intern("term" + std::to_string(t));
  for (size_t d = 0; d < num_docs; ++d) {
    StreamId stream = static_cast<StreamId>(rng.NextUint64(num_streams));
    Timestamp time = static_cast<Timestamp>(rng.NextUint64(
        static_cast<uint64_t>(timeline)));
    size_t len = 1 + rng.NextUint64(6);
    std::vector<TermId> tokens;
    for (size_t i = 0; i < len; ++i) {
      // Zipf-ish skew: low ids are frequent, so some terms are dense and
      // some stay in the singleton tail.
      TermId tok = static_cast<TermId>(rng.NextUint64(vocab));
      if (rng.Bernoulli(0.5)) tok = static_cast<TermId>(tok % (vocab / 4 + 1));
      tokens.push_back(tok);
    }
    EXPECT_TRUE(collection->AddDocument(stream, time, std::move(tokens)).ok());
  }
  return std::move(*collection);
}

ExpectedModelFactory TestFactory() {
  return WithPriorFloor([] { return std::make_unique<GlobalMeanModel>(); },
                        0.2);
}

void ExpectSamePatterns(const std::vector<CombinatorialPattern>& a,
                        const std::vector<CombinatorialPattern>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].streams, b[i].streams);
    EXPECT_EQ(a[i].timeframe, b[i].timeframe);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

void ExpectSameWindows(const std::vector<SpatiotemporalWindow>& a,
                       const std::vector<SpatiotemporalWindow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].region, b[i].region);
    EXPECT_EQ(a[i].streams, b[i].streams);
    EXPECT_EQ(a[i].timeframe, b[i].timeframe);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST(MineAllTerms, RejectsRegionalWithoutPositions) {
  Collection c = MakeRandomCollection(1, 4, 10, 8, 30);
  FrequencyIndex freq = FrequencyIndex::Build(c);
  BatchMinerOptions opts;
  opts.mine_regional = true;
  EXPECT_TRUE(MineAllTerms(freq, opts).status().IsInvalidArgument());
  opts.positions = c.StreamPositions();
  EXPECT_TRUE(MineAllTerms(freq, opts).status().IsInvalidArgument());
  opts.model_factory = TestFactory();
  EXPECT_TRUE(MineAllTerms(freq, opts).ok());
}

TEST(MineAllTerms, EmptyVocabulary) {
  auto collection = Collection::Create(5);
  ASSERT_TRUE(collection.ok());
  FrequencyIndex freq = FrequencyIndex::Build(*collection);
  auto result = MineAllTerms(freq);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->terms.empty());
}

TEST(MineAllTerms, MatchesSerialPerTermPipeline) {
  Collection c = MakeRandomCollection(7, 10, 30, 40, 400);
  FrequencyIndex freq = FrequencyIndex::Build(c);
  const std::vector<Point2D> positions = c.StreamPositions();

  BatchMinerOptions opts;
  opts.stcomb.min_interval_burstiness = 0.05;
  opts.mine_regional = true;
  opts.positions = positions;
  opts.model_factory = TestFactory();
  opts.num_threads = 4;
  auto batch = MineAllTerms(freq, opts);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->terms.size(), freq.num_terms());
  EXPECT_EQ(batch->threads_used, 4u);

  // Reference: the seed's serial loop — dense per-term series through the
  // standalone miners.
  StComb stcomb(opts.stcomb);
  for (TermId term = 0; term < freq.num_terms(); ++term) {
    TermSeries series = freq.DenseSeries(term);
    ExpectSamePatterns(batch->terms[term].combinatorial,
                       stcomb.MinePatterns(series));
    auto windows =
        MineRegionalPatterns(series, positions, opts.model_factory, opts.stlocal);
    ASSERT_TRUE(windows.ok());
    ExpectSameWindows(batch->terms[term].regional, *windows);
  }
}

class MineAllTermsParityTest : public ::testing::TestWithParam<int> {};

TEST_P(MineAllTermsParityTest, ThreadCountInvariant) {
  Collection c = MakeRandomCollection(100 + GetParam(), 8, 25, 30, 250);
  FrequencyIndex freq = FrequencyIndex::Build(c);

  BatchMinerOptions serial;
  serial.mine_regional = true;
  serial.positions = c.StreamPositions();
  serial.model_factory = TestFactory();
  serial.num_threads = 1;
  auto base = MineAllTerms(freq, serial);
  ASSERT_TRUE(base.ok());

  for (size_t threads : {2u, 3u, 8u}) {
    BatchMinerOptions par = serial;
    par.num_threads = threads;
    auto run = MineAllTerms(freq, par);
    ASSERT_TRUE(run.ok());
    ASSERT_EQ(run->terms.size(), base->terms.size());
    EXPECT_EQ(run->terms_mined, base->terms_mined);
    EXPECT_EQ(run->terms_skipped, base->terms_skipped);
    for (size_t t = 0; t < base->terms.size(); ++t) {
      EXPECT_EQ(run->terms[t].term, base->terms[t].term);
      ExpectSamePatterns(run->terms[t].combinatorial,
                         base->terms[t].combinatorial);
      ExpectSameWindows(run->terms[t].regional, base->terms[t].regional);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MineAllTermsParityTest, ::testing::Range(0, 5));

TEST(MineAllTerms, StandingBinningInvariantAcrossThreadCounts) {
  // Whole-vocabulary regional mining with a caller-lent standing binning
  // (the FeedRuntime configuration) must equal the build-per-call runs at
  // every thread count.
  Collection c = MakeRandomCollection(77, 10, 30, 35, 350);
  FrequencyIndex freq = FrequencyIndex::Build(c);

  BatchMinerOptions opts;
  opts.stcomb.min_interval_burstiness = 0.05;
  opts.mine_regional = true;
  opts.positions = c.StreamPositions();
  opts.model_factory = TestFactory();
  opts.num_threads = 1;
  auto base = MineAllTerms(freq, opts);
  ASSERT_TRUE(base.ok());

  auto binning =
      SpatialBinning::Create(opts.positions, opts.stlocal.rbursty.rect);
  ASSERT_TRUE(binning.ok());
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    BatchMinerOptions standing = opts;
    standing.binning = &*binning;
    standing.num_threads = threads;
    auto run = MineAllTerms(freq, standing);
    ASSERT_TRUE(run.ok());
    ASSERT_EQ(run->terms.size(), base->terms.size());
    for (size_t t = 0; t < base->terms.size(); ++t) {
      ExpectSamePatterns(run->terms[t].combinatorial,
                         base->terms[t].combinatorial);
      ExpectSameWindows(run->terms[t].regional, base->terms[t].regional);
    }
  }

  // The same standing binning drives incremental re-mines too.
  BatchMineResult live = std::move(*base);
  BatchMinerOptions standing = opts;
  standing.binning = &*binning;
  standing.num_threads = 4;
  std::vector<TermId> all_terms;
  for (TermId t = 0; t < freq.num_terms(); ++t) all_terms.push_back(t);
  ASSERT_TRUE(RemineTerms(freq, all_terms, standing, &live).ok());
  auto fresh = MineAllTerms(freq, opts);
  ASSERT_TRUE(fresh.ok());
  for (size_t t = 0; t < fresh->terms.size(); ++t) {
    ExpectSameWindows(live.terms[t].regional, fresh->terms[t].regional);
  }
}

TEST(MineAllTerms, RejectsBinningOfWrongSize) {
  Collection c = MakeRandomCollection(5, 6, 10, 12, 80);
  FrequencyIndex freq = FrequencyIndex::Build(c);
  BatchMinerOptions opts;
  opts.mine_regional = true;
  opts.positions = c.StreamPositions();
  opts.model_factory = TestFactory();
  auto binning = SpatialBinning::Create(std::vector<Point2D>(3));
  ASSERT_TRUE(binning.ok());
  opts.binning = &*binning;
  EXPECT_TRUE(MineAllTerms(freq, opts).status().IsInvalidArgument());
}

TEST(RemineTerms, DirtyTermsMatchFreshSweepAndQuietSlotsKeepTheirPatterns) {
  Collection c = MakeRandomCollection(31, 8, 20, 30, 300);
  FrequencyIndex freq = FrequencyIndex::Build(c);

  BatchMinerOptions opts;
  opts.stcomb.min_interval_burstiness = 0.05;
  opts.mine_regional = true;
  opts.positions = c.StreamPositions();
  opts.model_factory = TestFactory();
  opts.num_threads = 3;

  auto mined = MineAllTerms(freq, opts);
  ASSERT_TRUE(mined.ok());
  BatchMineResult live = std::move(*mined);
  const BatchMineResult before = live;

  // Feed: a few appended snapshots, some interning new vocabulary.
  Rng rng(55);
  for (int round = 0; round < 4; ++round) {
    Snapshot snap;
    for (size_t d = 0; d < 12; ++d) {
      SnapshotDocument doc;
      doc.stream = static_cast<StreamId>(rng.NextUint64(c.num_streams()));
      size_t len = 1 + rng.NextUint64(4);
      for (size_t i = 0; i < len; ++i) {
        if (rng.Bernoulli(0.1)) {
          doc.tokens.push_back(c.mutable_vocabulary()->Intern(
              "fresh" + std::to_string(rng.NextUint64(8))));
        } else {
          doc.tokens.push_back(static_cast<TermId>(rng.NextUint64(30)));
        }
      }
      snap.push_back(std::move(doc));
    }
    ASSERT_TRUE(c.Append(std::move(snap)).ok());
  }
  ASSERT_TRUE(freq.AppendSnapshot(c).ok());
  const std::vector<TermId> dirty = freq.TakeDirtyTerms();
  ASSERT_FALSE(dirty.empty());

  ASSERT_TRUE(RemineTerms(freq, dirty, opts, &live).ok());
  ASSERT_EQ(live.terms.size(), freq.num_terms());

  auto fresh = MineAllTerms(freq, opts);
  ASSERT_TRUE(fresh.ok());

  std::vector<bool> is_dirty(freq.num_terms(), false);
  for (TermId t : dirty) is_dirty[t] = true;
  for (TermId t = 0; t < freq.num_terms(); ++t) {
    if (is_dirty[t]) {
      // Re-mined slots are exactly what a fresh sweep produces.
      EXPECT_EQ(live.terms[t].mined, fresh->terms[t].mined) << "term " << t;
      ExpectSamePatterns(live.terms[t].combinatorial,
                         fresh->terms[t].combinatorial);
      ExpectSameWindows(live.terms[t].regional, fresh->terms[t].regional);
    } else if (t < before.terms.size()) {
      // Quiet slots keep the patterns of their last mine.
      ExpectSamePatterns(live.terms[t].combinatorial,
                         before.terms[t].combinatorial);
      ExpectSameWindows(live.terms[t].regional, before.terms[t].regional);
    } else {
      // New vocabulary that never got postings stays skipped.
      EXPECT_FALSE(live.terms[t].mined);
      EXPECT_EQ(live.terms[t].term, t);
    }
  }

  // Counters keep their invariant after incremental updates.
  size_t mined_slots = 0;
  for (const TermPatterns& slot : live.terms) {
    if (slot.mined) ++mined_slots;
  }
  EXPECT_EQ(live.terms_mined, mined_slots);
  EXPECT_EQ(live.terms_mined + live.terms_skipped, live.terms.size());
}

TEST(RemineTerms, ValidatesInput) {
  Collection c = MakeRandomCollection(3, 4, 10, 10, 60);
  FrequencyIndex freq = FrequencyIndex::Build(c);
  BatchMinerOptions opts;
  auto result = MineAllTerms(freq, opts);
  ASSERT_TRUE(result.ok());

  EXPECT_TRUE(RemineTerms(freq, {static_cast<TermId>(freq.num_terms())}, opts,
                          &*result)
                  .IsInvalidArgument());
  // Empty dirty set is a no-op success.
  EXPECT_TRUE(RemineTerms(freq, {}, opts, &*result).ok());
  // Duplicates are tolerated.
  EXPECT_TRUE(RemineTerms(freq, {0, 0, 1}, opts, &*result).ok());
}

TEST(MineAllTerms, FrequencyFloorSkipsRareTerms) {
  Collection c = MakeRandomCollection(11, 6, 20, 25, 200);
  FrequencyIndex freq = FrequencyIndex::Build(c);
  BatchMinerOptions opts;
  opts.min_term_total = 5.0;
  auto result = MineAllTerms(freq, opts);
  ASSERT_TRUE(result.ok());
  size_t expected_mined = 0;
  for (TermId t = 0; t < freq.num_terms(); ++t) {
    if (!freq.postings(t).empty() && freq.TotalCount(t) >= 5.0) ++expected_mined;
  }
  EXPECT_EQ(result->terms_mined, expected_mined);
  for (TermId t = 0; t < freq.num_terms(); ++t) {
    if (freq.TotalCount(t) < 5.0) {
      EXPECT_TRUE(result->terms[t].combinatorial.empty());
    }
  }
}

}  // namespace
}  // namespace stburst
