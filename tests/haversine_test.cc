// Tests for geo/haversine.

#include "stburst/geo/haversine.h"

#include <gtest/gtest.h>

namespace stburst {
namespace {

TEST(Haversine, ZeroForIdenticalPoints) {
  GeoPoint p{40.0, -3.7};
  EXPECT_DOUBLE_EQ(HaversineKm(p, p), 0.0);
}

TEST(Haversine, KnownCityDistances) {
  GeoPoint london{51.5074, -0.1278};
  GeoPoint paris{48.8566, 2.3522};
  GeoPoint new_york{40.7128, -74.0060};
  GeoPoint sydney{-33.8688, 151.2093};

  EXPECT_NEAR(HaversineKm(london, paris), 344.0, 5.0);
  EXPECT_NEAR(HaversineKm(london, new_york), 5570.0, 30.0);
  EXPECT_NEAR(HaversineKm(london, sydney), 16993.0, 80.0);
}

TEST(Haversine, Symmetric) {
  GeoPoint a{12.3, 45.6}, b{-33.0, 151.0};
  EXPECT_DOUBLE_EQ(HaversineKm(a, b), HaversineKm(b, a));
}

TEST(Haversine, AntipodesIsHalfCircumference) {
  GeoPoint a{0.0, 0.0}, b{0.0, 180.0};
  EXPECT_NEAR(HaversineKm(a, b), M_PI * kEarthRadiusKm, 1.0);
}

TEST(Haversine, PoleToPole) {
  GeoPoint north{90.0, 0.0}, south{-90.0, 0.0};
  EXPECT_NEAR(HaversineKm(north, south), M_PI * kEarthRadiusKm, 1.0);
}

TEST(Haversine, TriangleInequalityOnSamples) {
  GeoPoint a{10, 10}, b{20, 40}, c{-5, 70};
  EXPECT_LE(HaversineKm(a, c), HaversineKm(a, b) + HaversineKm(b, c) + 1e-9);
}

TEST(PairwiseDistanceMatrix, SymmetricZeroDiagonal) {
  std::vector<GeoPoint> pts{{0, 0}, {10, 10}, {-20, 50}, {45, -120}};
  auto d = PairwiseDistanceMatrixKm(pts);
  ASSERT_EQ(d.size(), 16u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(d[i * 4 + i], 0.0);
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(d[i * 4 + j], d[j * 4 + i]);
      if (i != j) EXPECT_GT(d[i * 4 + j], 0.0);
    }
  }
  EXPECT_DOUBLE_EQ(d[1], HaversineKm(pts[0], pts[1]));
}

TEST(PairwiseDistanceMatrix, EmptyInput) {
  EXPECT_TRUE(PairwiseDistanceMatrixKm({}).empty());
}

}  // namespace
}  // namespace stburst
