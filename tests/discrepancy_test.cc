// Tests for the max-weight rectangle module (core/discrepancy).

#include "stburst/core/discrepancy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "stburst/common/random.h"
#include "stburst/common/simd.h"

namespace stburst {
namespace {

TEST(MaxWeightRectangle, RejectsMismatchedInput) {
  EXPECT_TRUE(MaxWeightRectangle({{0, 0}}, {1.0, 2.0}).status()
                  .IsInvalidArgument());
}

TEST(MaxWeightRectangle, EmptyInput) {
  auto r = MaxWeightRectangle(std::vector<Point2D>{}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->score, 0.0);
  EXPECT_TRUE(r->rect.empty());
}

TEST(MaxWeightRectangle, AllNegativeGivesEmptyResult) {
  auto r = MaxWeightRectangle({{0, 0}, {1, 1}}, {-1.0, -2.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->score, 0.0);
  EXPECT_TRUE(r->rect.empty());
  EXPECT_TRUE(r->points_inside.empty());
}

TEST(MaxWeightRectangle, SinglePositivePoint) {
  auto r = MaxWeightRectangle({{3, 4}}, {2.5});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->score, 2.5);
  EXPECT_TRUE(r->rect.Contains(Point2D{3, 4}));
  EXPECT_EQ(r->points_inside, (std::vector<size_t>{0}));
}

TEST(MaxWeightRectangle, ExcludesHeavyNegativePoint) {
  // Two positives flanking a strong negative: best rect takes one positive.
  std::vector<Point2D> pts = {{0, 0}, {1, 0}, {2, 0}};
  std::vector<double> w = {1.0, -5.0, 1.2};
  auto r = MaxWeightRectangle(pts, w);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->score, 1.2);
  EXPECT_EQ(r->points_inside, (std::vector<size_t>{2}));
}

TEST(MaxWeightRectangle, AbsorbsWeakNegativePoint) {
  // The same geometry with a weak negative: spanning all three wins.
  std::vector<Point2D> pts = {{0, 0}, {1, 0}, {2, 0}};
  std::vector<double> w = {1.0, -0.3, 1.2};
  auto r = MaxWeightRectangle(pts, w);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->score, 1.9, 1e-12);
  EXPECT_EQ(r->points_inside.size(), 3u);
}

TEST(MaxWeightRectangle, TwoDimensionalSelection) {
  // Positive cluster at upper-right; lone positive lower-left with a
  // negative moat between them.
  std::vector<Point2D> pts = {{0, 0}, {5, 5}, {5, 6}, {6, 5}, {3, 3}};
  std::vector<double> w = {0.5, 1.0, 1.0, 1.0, -2.0};
  auto r = MaxWeightRectangle(pts, w);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->score, 3.0);
  std::vector<size_t> inside = r->points_inside;
  std::sort(inside.begin(), inside.end());
  EXPECT_EQ(inside, (std::vector<size_t>{1, 2, 3}));
}

TEST(MaxWeightRectangle, ExcludedWeightPoisonsContainingRects) {
  // The excluded point sits amid the cluster: the best rect must avoid it.
  std::vector<Point2D> pts = {{0, 0}, {1, 0}, {2, 0}};
  std::vector<double> w = {1.0, kExcludedWeight, 1.2};
  auto r = MaxWeightRectangle(pts, w);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->score, 1.2);
  EXPECT_EQ(r->points_inside, (std::vector<size_t>{2}));
}

TEST(MaxWeightRectangle, CoincidentPointsAggregate) {
  std::vector<Point2D> pts = {{1, 1}, {1, 1}, {1, 1}};
  std::vector<double> w = {1.0, 2.0, -0.5};
  auto r = MaxWeightRectangle(pts, w);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->score, 2.5, 1e-12);
  EXPECT_EQ(r->points_inside.size(), 3u);
}

// Brute-force oracle: all candidate rectangles from pairs of point coords.
double BruteForceBest(const std::vector<Point2D>& pts,
                      const std::vector<double>& w) {
  double best = 0.0;
  const size_t n = pts.size();
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      for (size_t c = 0; c < n; ++c) {
        for (size_t d = 0; d < n; ++d) {
          Rect rect(pts[a].x, pts[c].y, pts[b].x, pts[d].y);
          double score = 0.0;
          for (size_t i = 0; i < n; ++i) {
            if (rect.Contains(pts[i])) score += w[i];
          }
          best = std::max(best, score);
        }
      }
    }
  }
  return best;
}

class MaxRectRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxRectRandomTest, MatchesBruteForce) {
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 3 + rng.NextUint64(8);
    std::vector<Point2D> pts(n);
    std::vector<double> w(n);
    for (size_t i = 0; i < n; ++i) {
      pts[i] = Point2D{rng.Uniform(0, 10), rng.Uniform(0, 10)};
      w[i] = rng.Uniform(-2.0, 2.0);
    }
    auto r = MaxWeightRectangle(pts, w);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r->score, BruteForceBest(pts, w), 1e-9)
        << "seed " << GetParam() << " trial " << trial;
    // Reported score must equal the sum of weights inside the rect.
    double sum = 0.0;
    for (size_t i : r->points_inside) sum += w[i];
    EXPECT_NEAR(sum, r->score, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxRectRandomTest, ::testing::Range(0, 10));

TEST(MaxWeightRectangleGrid, FindsClusterOnCoarseGrid) {
  MaxRectOptions opts;
  opts.mode = MaxRectOptions::Mode::kGrid;
  opts.grid_cols = 8;
  opts.grid_rows = 8;
  // Positive cluster in one corner, negatives elsewhere.
  std::vector<Point2D> pts;
  std::vector<double> w;
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    pts.push_back(Point2D{rng.Uniform(0, 2), rng.Uniform(0, 2)});
    w.push_back(1.0);
  }
  for (int i = 0; i < 20; ++i) {
    pts.push_back(Point2D{rng.Uniform(5, 10), rng.Uniform(5, 10)});
    w.push_back(-0.5);
  }
  auto r = MaxWeightRectangle(pts, w, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->score, 20.0, 1e-9);
  EXPECT_EQ(r->points_inside.size(), 20u);
}

TEST(MaxWeightRectangleGrid, CollinearPointsFallBackToExact) {
  MaxRectOptions opts;
  opts.mode = MaxRectOptions::Mode::kGrid;
  std::vector<Point2D> pts = {{0, 1}, {1, 1}, {2, 1}};
  std::vector<double> w = {1.0, -5.0, 2.0};
  auto r = MaxWeightRectangle(pts, w, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->score, 2.0);
}

// The grid can only merge points into coarser selectable sets: every set of
// points a grid rectangle selects is also the point set of some geometric
// rectangle, so the exact sweep dominates any grid resolution; and because a
// 2x-finer grid's cell boundaries refine the coarser one's, doubling the
// resolution can never lose score either.
TEST(MaxWeightRectangleGrid, ScoreMonotoneInModeAndResolution) {
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 40 + rng.NextUint64(60);
    std::vector<Point2D> pts(n);
    std::vector<double> w(n);
    for (size_t i = 0; i < n; ++i) {
      pts[i] = Point2D{rng.Uniform(0, 50), rng.Uniform(0, 50)};
      w[i] = rng.Uniform(-1.5, 2.0);
    }
    auto exact = MaxWeightRectangle(pts, w);
    ASSERT_TRUE(exact.ok());

    double prev = 0.0;
    for (size_t g : {4u, 8u, 16u, 32u}) {
      MaxRectOptions opts;
      opts.mode = MaxRectOptions::Mode::kGrid;
      opts.grid_cols = g;
      opts.grid_rows = g;
      auto grid = MaxWeightRectangle(pts, w, opts);
      ASSERT_TRUE(grid.ok());
      EXPECT_LE(grid->score, exact->score + 1e-9)
          << "trial " << trial << " grid " << g;
      EXPECT_GE(grid->score, prev - 1e-9)
          << "trial " << trial << " grid " << g;
      // The reported score must match the members the binning selected.
      double sum = 0.0;
      for (size_t i : grid->points_inside) sum += w[i];
      EXPECT_NEAR(sum, grid->score, 1e-9);
      prev = grid->score;
    }
  }
}

TEST(MaxWeightRectangleGrid, RejectsZeroResolution) {
  MaxRectOptions opts;
  opts.mode = MaxRectOptions::Mode::kGrid;
  opts.grid_cols = 0;
  EXPECT_TRUE(MaxWeightRectangle({{0, 0}}, {1.0}, opts).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SpatialBinning::Create({{0, 0}}, opts).status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Shared spatial binning: solving many weight vectors against one binning
// must equal building the matrix per call, result for result.
// ---------------------------------------------------------------------------

void ExpectSameResult(const MaxRectResult& a, const MaxRectResult& b) {
  EXPECT_EQ(a.score, b.score);  // exact: same floats, same fold order
  EXPECT_EQ(a.rect, b.rect);
  EXPECT_EQ(a.points_inside, b.points_inside);
}

std::vector<Point2D> RandomPoints(Rng& rng, size_t n) {
  std::vector<Point2D> pts(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i] = Point2D{rng.Uniform(0, 30), rng.Uniform(0, 30)};
    // Some coincident points, so cells aggregate several weights.
    if (i > 0 && rng.Bernoulli(0.15)) pts[i] = pts[rng.NextUint64(i)];
  }
  return pts;
}

std::vector<double> RandomWeights(Rng& rng, size_t n) {
  std::vector<double> w(n);
  for (double& v : w) {
    v = rng.Uniform(-2.0, 2.0);
    if (rng.Bernoulli(0.1)) v = 0.0;              // zero-weight points
    if (rng.Bernoulli(0.05)) v = kExcludedWeight;  // R-Bursty exclusions
  }
  return w;
}

class SpatialBinningParityTest : public ::testing::TestWithParam<int> {};

TEST_P(SpatialBinningParityTest, SharedBinningMatchesPerCallConstruction) {
  Rng rng(4000 + GetParam());
  for (int mode = 0; mode < 2; ++mode) {
    MaxRectOptions opts;
    if (mode == 1) {
      opts.mode = MaxRectOptions::Mode::kGrid;
      opts.grid_cols = 16;
      opts.grid_rows = 12;
    }
    const size_t n = 5 + rng.NextUint64(60);
    std::vector<Point2D> pts = RandomPoints(rng, n);
    auto binning = SpatialBinning::Create(pts, opts);
    ASSERT_TRUE(binning.ok());
    EXPECT_EQ(binning->num_points(), n);
    // One binning, many snapshots — the mining access pattern.
    for (int snapshot = 0; snapshot < 12; ++snapshot) {
      std::vector<double> w = RandomWeights(rng, n);
      auto per_call = MaxWeightRectangle(pts, w, opts);
      auto shared = MaxWeightRectangle(*binning, w);
      ASSERT_TRUE(per_call.ok());
      ASSERT_TRUE(shared.ok());
      ExpectSameResult(*per_call, *shared);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialBinningParityTest,
                         ::testing::Range(0, 8));

TEST(SpatialBinning, DegenerateLayoutsMatchPerCall) {
  // Collinear and single-point layouts, where grid mode falls back to the
  // exact compression; the binned path must take the identical fallback.
  const std::vector<std::vector<Point2D>> layouts = {
      {{0, 1}, {1, 1}, {2, 1}, {3, 1}},          // horizontal line
      {{2, 0}, {2, 1}, {2, 5}, {2, 9}},          // vertical line
      {{4, 4}},                                  // single point
      {{1, 1}, {1, 1}, {1, 1}},                  // fully coincident
  };
  Rng rng(99);
  for (const auto& pts : layouts) {
    for (int mode = 0; mode < 2; ++mode) {
      MaxRectOptions opts;
      if (mode == 1) opts.mode = MaxRectOptions::Mode::kGrid;
      auto binning = SpatialBinning::Create(pts, opts);
      ASSERT_TRUE(binning.ok());
      for (int snapshot = 0; snapshot < 6; ++snapshot) {
        std::vector<double> w = RandomWeights(rng, pts.size());
        auto per_call = MaxWeightRectangle(pts, w, opts);
        auto shared = MaxWeightRectangle(*binning, w);
        ASSERT_TRUE(per_call.ok());
        ASSERT_TRUE(shared.ok());
        ExpectSameResult(*per_call, *shared);
      }
    }
  }
}

TEST(SpatialBinning, RejectsMismatchedWeights) {
  auto binning = SpatialBinning::Create({{0, 0}, {1, 1}});
  ASSERT_TRUE(binning.ok());
  EXPECT_TRUE(MaxWeightRectangle(*binning, std::vector<double>{1.0})
                  .status()
                  .IsInvalidArgument());
}

TEST(SpatialBinning, EmptyPointSet) {
  auto binning = SpatialBinning::Create({});
  ASSERT_TRUE(binning.ok());
  EXPECT_EQ(binning->rows(), 0u);
  auto r = MaxWeightRectangle(*binning, std::span<const double>{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rect.empty());
}

// ---------------------------------------------------------------------------
// SIMD dispatch: every vector SolveCells path (AVX2, AVX-512) must produce
// rectangles, scores, and member lists bit-identical to scalar — the
// kernels are element-wise, so no fold is reassociated.
// ---------------------------------------------------------------------------

// Runs fn under scalar and under every wider supported ISA, asserting each
// result matches the scalar one exactly; restores the active ISA afterwards.
template <typename Fn>
void ExpectIsaInvariant(const Fn& fn) {
  const simd::Isa previous = simd::SetIsaForTest(simd::Isa::kScalar);
  MaxRectResult scalar = fn();
  std::vector<simd::Isa> wider;
  if (simd::Avx2Supported()) wider.push_back(simd::Isa::kAvx2);
  if (simd::Avx512Supported()) wider.push_back(simd::Isa::kAvx512);
  for (simd::Isa isa : wider) {
    simd::SetIsaForTest(isa);
    MaxRectResult vectorized = fn();
    EXPECT_EQ(scalar.score, vectorized.score) << simd::IsaName(isa);
    EXPECT_EQ(scalar.rect, vectorized.rect) << simd::IsaName(isa);
    EXPECT_EQ(scalar.points_inside, vectorized.points_inside)
        << simd::IsaName(isa);
  }
  simd::SetIsaForTest(previous);
}

TEST(SolveCellsSimd, AllIsaLevelsBitIdentical) {
  if (!simd::Avx2Supported()) {
    GTEST_SKIP() << "CPU lacks AVX2; dispatch is scalar-only here";
  }
  Rng rng(31337);
  // Shapes spanning the deployed range: tiny, 1-D/collinear (exact-mode
  // single row/column), odd widths around the 4-lane boundary, a dense
  // exact matrix, and a 64x64 grid.
  struct Shape {
    size_t n;
    MaxRectOptions opts;
    bool collinear;
  };
  std::vector<Shape> shapes;
  for (size_t n : {1u, 3u, 4u, 5u, 17u, 63u, 200u}) {
    shapes.push_back({n, MaxRectOptions{}, false});
  }
  shapes.push_back({33, MaxRectOptions{}, true});  // 1-D layout
  {
    MaxRectOptions grid;
    grid.mode = MaxRectOptions::Mode::kGrid;
    shapes.push_back({4096, grid, false});
  }
  for (const Shape& shape : shapes) {
    std::vector<Point2D> pts(shape.n);
    for (size_t i = 0; i < shape.n; ++i) {
      pts[i] = Point2D{rng.Uniform(0, 100),
                       shape.collinear ? 7.0 : rng.Uniform(0, 100)};
    }
    auto binning = SpatialBinning::Create(pts, shape.opts);
    ASSERT_TRUE(binning.ok());
    for (int snapshot = 0; snapshot < 5; ++snapshot) {
      std::vector<double> w = RandomWeights(rng, shape.n);
      ExpectIsaInvariant([&] {
        auto r = MaxWeightRectangle(*binning, w);
        EXPECT_TRUE(r.ok());
        return r.ok() ? *r : MaxRectResult{};
      });
    }
  }
}

// ---------------------------------------------------------------------------
// KadaneMode::kVectorized — the reassociation boundary's parity gate. The
// contract is per-band maxima within 4 ULP of scalar mode (the argmax
// window on exact ties is documented unspecified); the filter + exact
// scalar-recovery implementation actually delivers bit-equality, which this
// ULP gate subsumes. Runs under every supported dispatch ISA.
// ---------------------------------------------------------------------------

int64_t OrderedBits(double x) {
  int64_t i;
  static_assert(sizeof(i) == sizeof(x));
  std::memcpy(&i, &x, sizeof(i));
  return i < 0 ? std::numeric_limits<int64_t>::min() - i : i;
}

int64_t UlpDiff(double a, double b) {
  if (a == b) return 0;
  return std::llabs(OrderedBits(a) - OrderedBits(b));
}

TEST(SolveCellsKadane, VectorizedParityWithinUlpGate) {
  Rng rng(20120807);
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::Avx2Supported()) isas.push_back(simd::Isa::kAvx2);
  if (simd::Avx512Supported()) isas.push_back(simd::Isa::kAvx512);

  struct Shape {
    size_t n;
    MaxRectOptions opts;
    bool single_column;  // all points share one x: a one-column band matrix
  };
  std::vector<Shape> shapes;
  for (size_t n : {1u, 5u, 17u, 63u, 200u}) {
    shapes.push_back({n, MaxRectOptions{}, false});
  }
  shapes.push_back({32, MaxRectOptions{}, true});  // degenerate single column
  {
    MaxRectOptions grid;
    grid.mode = MaxRectOptions::Mode::kGrid;
    shapes.push_back({4096, grid, false});
  }

  for (const Shape& shape : shapes) {
    std::vector<Point2D> pts(shape.n);
    for (size_t i = 0; i < shape.n; ++i) {
      pts[i] = Point2D{shape.single_column ? 3.0 : rng.Uniform(0, 100),
                       rng.Uniform(0, 100)};
    }
    MaxRectOptions scalar_opts = shape.opts;
    scalar_opts.kadane = MaxRectOptions::KadaneMode::kScalar;
    MaxRectOptions vec_opts = shape.opts;
    vec_opts.kadane = MaxRectOptions::KadaneMode::kVectorized;
    auto scalar_binning = SpatialBinning::Create(pts, scalar_opts);
    auto vec_binning = SpatialBinning::Create(pts, vec_opts);
    ASSERT_TRUE(scalar_binning.ok());
    ASSERT_TRUE(vec_binning.ok());
    ASSERT_EQ(vec_binning->kadane(), MaxRectOptions::KadaneMode::kVectorized);

    for (int snapshot = 0; snapshot < 6; ++snapshot) {
      std::vector<double> w = RandomWeights(rng, shape.n);
      if (snapshot == 4) {
        for (double& v : w) v = -std::fabs(v) - 0.125;  // all-negative band
      }
      // Scalar mode under scalar dispatch is the reference.
      const simd::Isa previous = simd::SetIsaForTest(simd::Isa::kScalar);
      auto reference = MaxWeightRectangle(*scalar_binning, w);
      ASSERT_TRUE(reference.ok());
      for (simd::Isa isa : isas) {
        simd::SetIsaForTest(isa);
        auto vectorized = MaxWeightRectangle(*vec_binning, w);
        ASSERT_TRUE(vectorized.ok());
        EXPECT_LE(UlpDiff(reference->score, vectorized->score), 4)
            << simd::IsaName(isa) << " n=" << shape.n
            << " snapshot=" << snapshot;
        if (reference->score == vectorized->score) {
          // Equal scores must mean the same window and members: the filter
          // never alters which band wins, only whether its recurrence runs.
          EXPECT_EQ(reference->rect, vectorized->rect) << simd::IsaName(isa);
          EXPECT_EQ(reference->points_inside, vectorized->points_inside)
              << simd::IsaName(isa);
        }
      }
      simd::SetIsaForTest(previous);
    }
  }
}

TEST(Simd, ActiveIsaHonorsForcing) {
  const simd::Isa previous = simd::SetIsaForTest(simd::Isa::kScalar);
  EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
  if (simd::Avx2Supported()) {
    simd::SetIsaForTest(simd::Isa::kAvx2);
    EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kAvx2);
  }
  simd::SetIsaForTest(previous);
  EXPECT_EQ(simd::ActiveIsa(), previous);
}

}  // namespace
}  // namespace stburst
