// Tests for the Threshold Algorithm (index/threshold_algorithm).

#include "stburst/index/threshold_algorithm.h"

#include <gtest/gtest.h>

#include "stburst/common/random.h"

namespace stburst {
namespace {

InvertedIndex SmallIndex() {
  InvertedIndex idx;
  // term 0: d1=5, d2=3, d3=1 ; term 1: d2=4, d4=2
  idx.Add(0, 1, 5.0);
  idx.Add(0, 2, 3.0);
  idx.Add(0, 3, 1.0);
  idx.Add(1, 2, 4.0);
  idx.Add(1, 4, 2.0);
  idx.Finalize();
  return idx;
}

TEST(ThresholdTopK, SingleTermTopK) {
  InvertedIndex idx = SmallIndex();
  auto result = ThresholdTopK(idx, {0}, 2);
  ASSERT_EQ(result.docs.size(), 2u);
  EXPECT_EQ(result.docs[0].doc, 1u);
  EXPECT_DOUBLE_EQ(result.docs[0].score, 5.0);
  EXPECT_EQ(result.docs[1].doc, 2u);
}

TEST(ThresholdTopK, MultiTermAggregation) {
  InvertedIndex idx = SmallIndex();
  auto result = ThresholdTopK(idx, {0, 1}, 3);
  ASSERT_EQ(result.docs.size(), 3u);
  // d2 = 3 + 4 = 7 beats d1 = 5.
  EXPECT_EQ(result.docs[0].doc, 2u);
  EXPECT_DOUBLE_EQ(result.docs[0].score, 7.0);
  EXPECT_EQ(result.docs[1].doc, 1u);
  EXPECT_EQ(result.docs[2].doc, 4u);
}

TEST(ThresholdTopK, DuplicateQueryTermsCollapse) {
  InvertedIndex idx = SmallIndex();
  auto dup = ThresholdTopK(idx, {0, 0, 0}, 2);
  auto single = ThresholdTopK(idx, {0}, 2);
  ASSERT_EQ(dup.docs.size(), single.docs.size());
  for (size_t i = 0; i < dup.docs.size(); ++i) {
    EXPECT_EQ(dup.docs[i], single.docs[i]);
  }
}

TEST(ThresholdTopK, EmptyQueryAndZeroK) {
  InvertedIndex idx = SmallIndex();
  EXPECT_TRUE(ThresholdTopK(idx, {}, 5).docs.empty());
  EXPECT_TRUE(ThresholdTopK(idx, {0}, 0).docs.empty());
  EXPECT_TRUE(ThresholdTopK(idx, {99}, 5).docs.empty());
}

TEST(ThresholdTopK, KLargerThanCorpus) {
  InvertedIndex idx = SmallIndex();
  auto result = ThresholdTopK(idx, {0, 1}, 100);
  EXPECT_EQ(result.docs.size(), 4u);  // only 4 docs have positive scores
}

TEST(ThresholdTopK, EarlyTerminationOnLongLists) {
  // 1000 docs in each of two lists; top doc dominates, so TA must stop well
  // before exhausting the lists.
  InvertedIndex idx;
  for (DocId d = 0; d < 1000; ++d) {
    idx.Add(0, d, d == 0 ? 1000.0 : 1.0 / (1.0 + d));
    idx.Add(1, d, d == 0 ? 1000.0 : 1.0 / (1.0 + d));
  }
  idx.Finalize();
  auto result = ThresholdTopK(idx, {0, 1}, 1);
  ASSERT_EQ(result.docs.size(), 1u);
  EXPECT_EQ(result.docs[0].doc, 0u);
  EXPECT_TRUE(result.early_terminated);
  EXPECT_LT(result.sorted_accesses, 100u);
}

TEST(ThresholdTopK, MatchesExhaustiveOnRandomIndexes) {
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    InvertedIndex idx;
    size_t terms = 1 + rng.NextUint64(4);
    for (TermId t = 0; t < terms; ++t) {
      // Each (term, doc) pair appears at most once, like the real engine.
      for (DocId d = 0; d < 100; ++d) {
        if (rng.Bernoulli(0.4)) idx.Add(t, d, rng.Uniform(0.01, 5.0));
      }
    }
    idx.Finalize();
    std::vector<TermId> query;
    for (TermId t = 0; t < terms; ++t) query.push_back(t);
    size_t k = 1 + rng.NextUint64(15);

    auto ta = ThresholdTopK(idx, query, k);
    auto ex = ExhaustiveTopK(idx, query, k);
    ASSERT_EQ(ta.docs.size(), ex.docs.size()) << "trial " << trial;
    for (size_t i = 0; i < ta.docs.size(); ++i) {
      EXPECT_EQ(ta.docs[i].doc, ex.docs[i].doc) << "trial " << trial;
      EXPECT_NEAR(ta.docs[i].score, ex.docs[i].score, 1e-9);
    }
  }
}

TEST(ThresholdTopK, NeverMoreSortedAccessesThanExhaustive) {
  Rng rng(7);
  InvertedIndex idx;
  for (TermId t = 0; t < 3; ++t) {
    for (DocId d = 0; d < 400; ++d) {
      if (rng.Bernoulli(0.5)) idx.Add(t, d, rng.Uniform(0.1, 2.0));
    }
  }
  idx.Finalize();
  auto ta = ThresholdTopK(idx, {0, 1, 2}, 5);
  auto ex = ExhaustiveTopK(idx, {0, 1, 2}, 5);
  EXPECT_LE(ta.sorted_accesses, ex.sorted_accesses);
}

}  // namespace
}  // namespace stburst
