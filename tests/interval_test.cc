// Tests for core/interval.

#include "stburst/core/interval.h"

#include <gtest/gtest.h>

namespace stburst {
namespace {

TEST(Interval, DefaultIsInvalid) {
  Interval i;
  EXPECT_FALSE(i.valid());
  EXPECT_EQ(i.length(), 0);
  EXPECT_FALSE(i.Contains(0));
}

TEST(Interval, LengthAndContains) {
  Interval i{3, 7};
  EXPECT_TRUE(i.valid());
  EXPECT_EQ(i.length(), 5);
  EXPECT_TRUE(i.Contains(3));
  EXPECT_TRUE(i.Contains(7));
  EXPECT_FALSE(i.Contains(2));
  EXPECT_FALSE(i.Contains(8));
}

TEST(Interval, SinglePoint) {
  Interval i{4, 4};
  EXPECT_EQ(i.length(), 1);
  EXPECT_TRUE(i.Contains(4));
}

TEST(Interval, Intersects) {
  EXPECT_TRUE((Interval{0, 5}).Intersects(Interval{5, 9}));   // touching
  EXPECT_TRUE((Interval{0, 5}).Intersects(Interval{2, 3}));   // nested
  EXPECT_FALSE((Interval{0, 5}).Intersects(Interval{6, 9}));  // disjoint
  EXPECT_FALSE((Interval{0, 5}).Intersects(Interval{}));      // invalid
}

TEST(Interval, IntersectAndUnion) {
  Interval a{0, 5}, b{3, 9};
  EXPECT_EQ(a.Intersect(b), (Interval{3, 5}));
  EXPECT_EQ(a.Union(b), (Interval{0, 9}));
  // Disjoint intersection is invalid.
  EXPECT_FALSE((Interval{0, 2}).Intersect(Interval{4, 6}).valid());
  // Union with invalid returns the other operand.
  EXPECT_EQ(Interval{}.Union(a), a);
  EXPECT_EQ(a.Union(Interval{}), a);
}

TEST(Interval, TemporalJaccard) {
  Interval a{0, 9}, b{5, 14};
  // |inter| = 5, |union of coverage| = 10 + 10 - 5 = 15.
  EXPECT_NEAR(a.TemporalJaccard(b), 5.0 / 15.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.TemporalJaccard(a), 1.0);
  EXPECT_DOUBLE_EQ(a.TemporalJaccard(Interval{20, 25}), 0.0);
  EXPECT_DOUBLE_EQ(a.TemporalJaccard(Interval{}), 0.0);
}

TEST(Interval, ToStringAndEquality) {
  EXPECT_EQ((Interval{2, 4}).ToString(), "[2:4]");
  EXPECT_EQ(Interval{}.ToString(), "[invalid]");
  EXPECT_EQ((Interval{1, 2}), (Interval{1, 2}));
  EXPECT_NE((Interval{1, 2}), (Interval{1, 3}));
}

}  // namespace
}  // namespace stburst
