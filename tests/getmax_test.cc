// Tests for the Ruzzo–Tompa maximal-segments algorithm (core/getmax).

#include "stburst/core/getmax.h"

#include <gtest/gtest.h>

#include <vector>

#include "stburst/common/random.h"

namespace stburst {
namespace {

TEST(MaximalSegments, EmptyInput) {
  EXPECT_TRUE(MaximalSegments({}).empty());
}

TEST(MaximalSegments, AllNegative) {
  EXPECT_TRUE(MaximalSegments({-1.0, -0.5, -2.0}).empty());
}

TEST(MaximalSegments, SinglePositive) {
  auto segs = MaximalSegments({-1.0, 2.0, -1.0});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].start, 1u);
  EXPECT_EQ(segs[0].end, 1u);
  EXPECT_DOUBLE_EQ(segs[0].score, 2.0);
}

TEST(MaximalSegments, MergesAcrossSmallDip) {
  // 4 - 1 + 4 = 7 beats either 4 alone, so one merged segment.
  auto segs = MaximalSegments({4.0, -1.0, 4.0});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].start, 0u);
  EXPECT_EQ(segs[0].end, 2u);
  EXPECT_DOUBLE_EQ(segs[0].score, 7.0);
}

TEST(MaximalSegments, KeepsSeparateAcrossDeepDip) {
  // Merging 4 -5 4 scores 3 < 4, so two separate segments.
  auto segs = MaximalSegments({4.0, -5.0, 4.0});
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].start, 0u);
  EXPECT_EQ(segs[0].end, 0u);
  EXPECT_EQ(segs[1].start, 2u);
  EXPECT_EQ(segs[1].end, 2u);
}

TEST(MaximalSegments, RuzzoTompaPaperExample) {
  // The worked example from Ruzzo & Tompa (1999): scores
  // (4, -5, 3, -3, 1, 2, -2, 2, -2, 1, 5) yield maximal segments
  // [0,0]=4, [2,2]=3, [4,10]=7.
  auto segs = MaximalSegments({4, -5, 3, -3, 1, 2, -2, 2, -2, 1, 5});
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].start, 0u);
  EXPECT_EQ(segs[0].end, 0u);
  EXPECT_DOUBLE_EQ(segs[0].score, 4.0);
  EXPECT_EQ(segs[1].start, 2u);
  EXPECT_EQ(segs[1].end, 2u);
  EXPECT_DOUBLE_EQ(segs[1].score, 3.0);
  EXPECT_EQ(segs[2].start, 4u);
  EXPECT_EQ(segs[2].end, 10u);
  EXPECT_DOUBLE_EQ(segs[2].score, 7.0);
}

TEST(MaximalSegments, SegmentsStartAndEndPositive) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> scores(200);
    for (double& s : scores) s = rng.Uniform(-1.0, 1.0);
    for (const Segment& seg : MaximalSegments(scores)) {
      EXPECT_GT(scores[seg.start], 0.0);
      EXPECT_GT(scores[seg.end], 0.0);
      EXPECT_GT(seg.score, 0.0);
    }
  }
}

TEST(MaximalSegments, SegmentsAreDisjointAndOrdered) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> scores(300);
    for (double& s : scores) s = rng.Uniform(-2.0, 1.0);
    auto segs = MaximalSegments(scores);
    for (size_t i = 1; i < segs.size(); ++i) {
      EXPECT_GT(segs[i].start, segs[i - 1].end);
    }
  }
}

// Brute-force check of the Ruzzo–Tompa characterization: a segment is
// maximal iff every proper prefix and suffix has strictly positive sum, and
// it is containment-maximal among segments with that property.
bool AllPrefixesSuffixesPositive(const std::vector<double>& s, size_t a,
                                 size_t b) {
  double run = 0.0;
  for (size_t j = a; j <= b; ++j) {
    run += s[j];
    if (run <= 0.0) return false;  // prefix [a, j] non-positive
  }
  run = 0.0;
  for (size_t j = b + 1; j-- > a;) {
    run += s[j];
    if (run <= 0.0) return false;  // suffix [j, b] non-positive
  }
  return true;
}

std::vector<Segment> BruteForceMaximalSegments(const std::vector<double>& s) {
  std::vector<Segment> eligible;
  for (size_t a = 0; a < s.size(); ++a) {
    double total = 0.0;
    for (size_t b = a; b < s.size(); ++b) {
      total += s[b];
      if (AllPrefixesSuffixesPositive(s, a, b)) {
        eligible.push_back(Segment{a, b, total});
      }
    }
  }
  std::vector<Segment> maximal;
  for (const Segment& cand : eligible) {
    bool contained = false;
    for (const Segment& other : eligible) {
      if (other.start <= cand.start && cand.end <= other.end &&
          (other.start != cand.start || other.end != cand.end)) {
        contained = true;
        break;
      }
    }
    if (!contained) maximal.push_back(cand);
  }
  return maximal;
}

TEST(MaximalSegments, MatchesBruteForceCharacterization) {
  Rng rng(9);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> scores(12);
    for (double& s : scores) s = rng.Uniform(-1.5, 1.0);
    auto fast = MaximalSegments(scores);
    auto brute = BruteForceMaximalSegments(scores);
    ASSERT_EQ(fast.size(), brute.size()) << "trial " << trial;
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].start, brute[i].start) << "trial " << trial;
      EXPECT_EQ(fast[i].end, brute[i].end) << "trial " << trial;
      EXPECT_NEAR(fast[i].score, brute[i].score, 1e-9) << "trial " << trial;
    }
  }
}

TEST(OnlineMaxSegments, TotalTracksSum) {
  OnlineMaxSegments online;
  std::vector<double> scores = {1.0, -2.0, 0.5, 3.0, -1.5};
  double sum = 0.0;
  for (double s : scores) {
    online.Add(s);
    sum += s;
    EXPECT_DOUBLE_EQ(online.total(), sum);
  }
  EXPECT_EQ(online.size(), scores.size());
}

TEST(OnlineMaxSegments, MatchesBatchAtEveryPrefix) {
  Rng rng(2024);
  std::vector<double> scores(150);
  for (double& s : scores) s = rng.Uniform(-1.0, 1.0);

  OnlineMaxSegments online;
  std::vector<double> prefix;
  for (double s : scores) {
    online.Add(s);
    prefix.push_back(s);
    EXPECT_EQ(online.CurrentSegments(), MaximalSegments(prefix));
  }
}

TEST(OnlineMaxSegments, ResetClearsState) {
  OnlineMaxSegments online;
  online.Add(1.0);
  online.Add(2.0);
  online.Reset();
  EXPECT_EQ(online.size(), 0u);
  EXPECT_DOUBLE_EQ(online.total(), 0.0);
  EXPECT_TRUE(online.CurrentSegments().empty());
}

TEST(OnlineMaxSegments, NumCandidatesMatchesSegments) {
  Rng rng(5);
  OnlineMaxSegments online;
  for (int i = 0; i < 500; ++i) {
    online.Add(rng.Uniform(-1.0, 1.0));
    EXPECT_EQ(online.num_candidates(), online.CurrentSegments().size());
  }
}

}  // namespace
}  // namespace stburst
