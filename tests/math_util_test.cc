// Tests for common/math_util: compensated sums, streaming stats, EWMA,
// histograms.

#include "stburst/common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stburst/common/random.h"

namespace stburst {
namespace {

TEST(KahanSum, ExactForSmallInputs) {
  KahanSum s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Get(), 6.0);
}

TEST(KahanSum, CompensatesCancellation) {
  // 1 + 1e16 - 1e16 repeatedly: naive summation loses the ones.
  KahanSum s;
  double naive = 0.0;
  for (int i = 0; i < 1000; ++i) {
    for (double v : {1.0, 1e16, -1e16}) {
      s.Add(v);
      naive += v;
    }
  }
  EXPECT_DOUBLE_EQ(s.Get(), 1000.0);
  EXPECT_NE(naive, 1000.0);  // demonstrates why Kahan is needed
}

TEST(KahanSum, ResetZeroes) {
  KahanSum s;
  s.Add(5.0);
  s.Reset();
  EXPECT_DOUBLE_EQ(s.Get(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats st;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.Add(v);
  EXPECT_EQ(st.count(), 8);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(st.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats st;
  EXPECT_EQ(st.count(), 0);
  EXPECT_DOUBLE_EQ(st.mean(), 0.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
  st.Add(3.0);
  EXPECT_DOUBLE_EQ(st.mean(), 3.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
}

TEST(RunningStats, MatchesBatchOnRandomData) {
  Rng rng(1);
  std::vector<double> data(5000);
  for (double& v : data) v = rng.Uniform(-10.0, 10.0);
  RunningStats st;
  double sum = 0.0;
  for (double v : data) {
    st.Add(v);
    sum += v;
  }
  double mean = sum / data.size();
  double ss = 0.0;
  for (double v : data) ss += (v - mean) * (v - mean);
  EXPECT_NEAR(st.mean(), mean, 1e-9);
  EXPECT_NEAR(st.variance(), ss / (data.size() - 1), 1e-6);
}

TEST(Ewma, FirstObservationInitializes) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  e.Add(10.0);
  EXPECT_FALSE(e.empty());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, SmoothsTowardNewValues) {
  Ewma e(0.5);
  e.Add(0.0);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Ewma, AlphaOneTracksExactly) {
  Ewma e(1.0);
  e.Add(3.0);
  e.Add(-2.0);
  EXPECT_DOUBLE_EQ(e.value(), -2.0);
}

TEST(Histogram, BucketsValues) {
  auto h = Histogram({0.1, 0.2, 0.6, 0.9, 0.95}, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2);
  EXPECT_EQ(h[1], 3);
}

TEST(Histogram, ClampsOutOfRange) {
  auto h = Histogram({-5.0, 0.5, 99.0}, 0.0, 1.0, 4);
  EXPECT_EQ(h[0], 1);
  EXPECT_EQ(h[3], 1);
  int64_t total = 0;
  for (int64_t c : h) total += c;
  EXPECT_EQ(total, 3);
}

TEST(AlmostEqual, Tolerances) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0));
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-13));
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 * (1 + 1e-10)));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(0.0, 1e-13));
}

}  // namespace
}  // namespace stburst
