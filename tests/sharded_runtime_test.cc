// ShardedRuntime bit-identity proofs: at every shard count a ShardedRuntime
// fed the same snapshots as an unsharded FeedRuntime must expose identical
// tick stats (wall time aside), identical standing patterns and staleness
// for every term, and identical Search() answers — documents, scores,
// access counts, early termination, tie resolution — plus the cross-shard
// transactionality sweep: any shard's failure (and the dedicated
// "sharded.commit" gate) rolls the WHOLE sharded tick back.
//
// The shard counts under test come from STBURST_TEST_SHARDS when set (the
// CI shard matrix exports it via `SHARDS=K ./ci.sh`), else {1,2,3,4,8}.

#include "stburst/stream/sharded_runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "stburst/common/fault_injection.h"
#include "stburst/common/random.h"
#include "stburst/history/cold_tier.h"
#include "stburst/stream/feed_runtime.h"

namespace stburst {
namespace {

constexpr size_t kStreams = 6;
constexpr size_t kVocab = 60;
constexpr Timestamp kHistoryWeeks = 4;
constexpr Timestamp kWindow = 6;
constexpr int kLiveTicks = 12;  // overfills the window: evicting ticks

std::vector<size_t> TestShardCounts() {
  if (const char* env = std::getenv("STBURST_TEST_SHARDS");
      env != nullptr && *env != '\0') {
    const size_t k = static_cast<size_t>(std::strtoul(env, nullptr, 10));
    if (k >= 1) return {k};
  }
  return {1, 2, 3, 4, 8};
}

FeedRuntimeOptions BaseOptions() {
  FeedRuntimeOptions opts;
  opts.num_threads = 4;
  opts.retention_window = kWindow;
  opts.refresh_budget = 4;
  opts.search_serving = SearchServing::kCombinatorial;
  opts.miner.stcomb.min_interval_burstiness = 0.05;
  // Cold tier on, so every parity proof below also covers per-shard folds
  // (and the fault sweep exercises "history.fold" at K=3).
  opts.history_mode = HistoryMode::kInMemory;
  opts.history_bucket_width = 2;
  return opts;
}

Collection MakeSeedCollection(Timestamp weeks = kHistoryWeeks) {
  auto c = Collection::Create(weeks);
  EXPECT_TRUE(c.ok());
  for (size_t s = 0; s < kStreams; ++s) {
    c->AddStream("s" + std::to_string(s), {},
                 Point2D{static_cast<double>(s % 3),
                         static_cast<double>(s / 3)});
  }
  Vocabulary* v = c->mutable_vocabulary();
  for (size_t t = 0; t < kVocab; ++t) v->Intern("term" + std::to_string(t));
  Rng rng(7);
  for (Timestamp w = 0; w < weeks; ++w) {
    for (StreamId s = 0; s < kStreams; ++s) {
      size_t docs = 1 + rng.NextUint64(2);
      for (size_t d = 0; d < docs; ++d) {
        std::vector<TermId> tokens;
        size_t len = 2 + rng.NextUint64(4);
        for (size_t i = 0; i < len; ++i) {
          tokens.push_back(static_cast<TermId>(rng.NextUint64(kVocab)));
        }
        EXPECT_TRUE(c->AddDocument(s, w, std::move(tokens)).ok());
      }
    }
  }
  return std::move(*c);
}

// Random snapshot over `vocab_size` terms; ~10% of documents carry no
// tokens at all, so the global DocId numbering of unrouted documents is
// exercised (they consume an id but live in no shard).
Snapshot MakeSnapshot(Rng& rng, size_t vocab_size) {
  Snapshot snap;
  for (StreamId s = 0; s < kStreams; ++s) {
    size_t docs = 1 + rng.NextUint64(2);
    for (size_t d = 0; d < docs; ++d) {
      SnapshotDocument doc;
      doc.stream = s;
      if (!rng.Bernoulli(0.1)) {
        size_t len = 2 + rng.NextUint64(4);
        for (size_t i = 0; i < len; ++i) {
          TermId tok = static_cast<TermId>(rng.NextUint64(vocab_size));
          if (rng.Bernoulli(0.5)) {
            tok = static_cast<TermId>(tok % (vocab_size / 4 + 1));
          }
          doc.tokens.push_back(tok);
        }
      }
      snap.push_back(std::move(doc));
    }
  }
  return snap;
}

void ExpectSamePatterns(const TermPatterns& a, const TermPatterns& b,
                        TermId term) {
  ASSERT_EQ(a.mined, b.mined) << "term " << term;
  ASSERT_EQ(a.combinatorial.size(), b.combinatorial.size()) << "term " << term;
  for (size_t i = 0; i < a.combinatorial.size(); ++i) {
    EXPECT_EQ(a.combinatorial[i].streams, b.combinatorial[i].streams);
    EXPECT_EQ(a.combinatorial[i].timeframe, b.combinatorial[i].timeframe);
    EXPECT_EQ(a.combinatorial[i].score, b.combinatorial[i].score);
  }
  ASSERT_EQ(a.regional.size(), b.regional.size()) << "term " << term;
  for (size_t i = 0; i < a.regional.size(); ++i) {
    EXPECT_EQ(a.regional[i].region, b.regional[i].region);
    EXPECT_EQ(a.regional[i].streams, b.regional[i].streams);
    EXPECT_EQ(a.regional[i].timeframe, b.regional[i].timeframe);
    EXPECT_EQ(a.regional[i].score, b.regional[i].score);
  }
}

// Everything the caller can act on; the generation stamp is the one field
// with a sharding-specific scheme (sum of shard generations) and is
// checked separately for monotonicity.
void ExpectSameSearch(const TopKResult& a, const TopKResult& b,
                      const char* what) {
  EXPECT_EQ(a.docs, b.docs) << what;
  EXPECT_EQ(a.sorted_accesses, b.sorted_accesses) << what;
  EXPECT_EQ(a.random_accesses, b.random_accesses) << what;
  EXPECT_EQ(a.early_terminated, b.early_terminated) << what;
}

// The full observable parity surface between a sharded runtime and its
// unsharded control.
void ExpectShardedMatchesUnsharded(const ShardedRuntime& sharded,
                                   const FeedRuntime& control) {
  EXPECT_EQ(sharded.timeline_length(),
            control.collection().timeline_length());
  EXPECT_EQ(sharded.window_start(), control.window_start());
  EXPECT_EQ(sharded.doc_id_base(), control.collection().doc_id_base());
  ASSERT_EQ(sharded.vocabulary().size(),
            control.collection().vocabulary().size());
  for (TermId t = 0; t < sharded.vocabulary().size(); ++t) {
    ExpectSamePatterns(sharded.patterns(t), control.patterns(t), t);
    EXPECT_EQ(sharded.staleness(t), control.staleness(t)) << "term " << t;
  }
}

void ExpectSameTickStats(const FeedTickStats& a, const FeedTickStats& b) {
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.documents, b.documents);
  EXPECT_EQ(a.rejected_documents, b.rejected_documents);
  EXPECT_EQ(a.dirty_terms, b.dirty_terms);
  EXPECT_EQ(a.refreshed_terms, b.refreshed_terms);
  EXPECT_EQ(a.search_terms, b.search_terms);
  EXPECT_EQ(a.evicted, b.evicted);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.folded_terms, b.folded_terms);
}

// Bit-identity of two cold tiers (watermarks, bounds, every term's merged
// rows). Tolerates both-absent; fails if only one side has a tier.
void ExpectSameTierState(const ColdTier* a, const ColdTier* b,
                         const char* what) {
  ASSERT_EQ(a == nullptr, b == nullptr) << what;
  if (a == nullptr) return;
  EXPECT_EQ(a->bucket_width(), b->bucket_width()) << what;
  EXPECT_EQ(a->covered_start(), b->covered_start()) << what;
  EXPECT_EQ(a->folded_until(), b->folded_until()) << what;
  EXPECT_EQ(a->stream_upper_bound(), b->stream_upper_bound()) << what;
  EXPECT_EQ(a->term_upper_bound(), b->term_upper_bound()) << what;
  const TermId terms =
      std::max(a->term_upper_bound(), b->term_upper_bound());
  for (TermId t = 0; t < terms; ++t) {
    EXPECT_TRUE(a->TermRows(t) == b->TermRows(t)) << what << " term " << t;
  }
}

ShardedRuntimeOptions ShardedOptions(size_t num_shards,
                                     FeedRuntimeOptions base = BaseOptions()) {
  ShardedRuntimeOptions opts;
  opts.runtime = base;
  opts.num_shards = num_shards;
  return opts;
}

// ------------------------------------------------------------- ShardMap

TEST(ShardMapTest, AssignmentIsStableAndInRange) {
  ShardMap map(4);
  EXPECT_EQ(map.num_shards(), 4u);
  for (TermId t = 0; t < 1000; ++t) {
    const size_t s = map.shard_of(t);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, map.shard_of(t));  // pure function of (term, K)
  }
  ShardMap one(1);
  for (TermId t = 0; t < 100; ++t) EXPECT_EQ(one.shard_of(t), 0u);
}

TEST(ShardMapTest, AssignmentSpreadsTheVocabulary) {
  ShardMap map(4);
  std::vector<size_t> counts(4, 0);
  for (TermId t = 0; t < 4096; ++t) ++counts[map.shard_of(t)];
  for (size_t s = 0; s < 4; ++s) {
    // A grossly lopsided split would defeat the sharding; the splitmix64
    // finalizer keeps every shard within a loose band of the mean.
    EXPECT_GT(counts[s], 4096u / 8) << "shard " << s;
    EXPECT_LT(counts[s], 4096u / 2) << "shard " << s;
  }
}

TEST(ShardMapTest, SplitRoutesEveryTokenToItsOwnerOnce) {
  ShardMap map(3);
  Snapshot snap;
  Rng rng(11);
  for (StreamId s = 0; s < 4; ++s) {
    for (int d = 0; d < 5; ++d) {
      SnapshotDocument doc;
      doc.stream = s;
      size_t len = rng.NextUint64(6);  // includes token-less documents
      for (size_t i = 0; i < len; ++i) {
        doc.tokens.push_back(static_cast<TermId>(rng.NextUint64(40)));
      }
      snap.push_back(std::move(doc));
    }
  }

  std::vector<Snapshot> parts;
  std::vector<std::vector<size_t>> routed;
  map.SplitSnapshot(snap, &parts, &routed);
  ASSERT_EQ(parts.size(), 3u);
  ASSERT_EQ(routed.size(), 3u);

  size_t total_tokens = 0;
  for (size_t s = 0; s < 3; ++s) {
    ASSERT_EQ(parts[s].size(), routed[s].size());
    for (size_t i = 0; i < parts[s].size(); ++i) {
      const SnapshotDocument& piece = parts[s][i];
      const SnapshotDocument& original = snap[routed[s][i]];
      EXPECT_EQ(piece.stream, original.stream);
      EXPECT_EQ(piece.event_id, original.event_id);
      EXPECT_FALSE(piece.tokens.empty());  // routed iff it carries a term
      for (TermId tok : piece.tokens) {
        EXPECT_EQ(map.shard_of(tok), s);
      }
      total_tokens += piece.tokens.size();
      if (i > 0) EXPECT_LT(routed[s][i - 1], routed[s][i]);  // ascending
    }
  }
  size_t input_tokens = 0;
  for (const SnapshotDocument& doc : snap) input_tokens += doc.tokens.size();
  EXPECT_EQ(total_tokens, input_tokens);  // every token lands exactly once
}

// --------------------------------------------------------- construction

TEST(ShardedRuntimeTest, CreateRejectsZeroShards) {
  auto runtime = ShardedRuntime::Create(MakeSeedCollection(),
                                        ShardedOptions(0));
  ASSERT_FALSE(runtime.ok());
  EXPECT_EQ(runtime.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedRuntimeTest, CreateRejectsOutOfOrderDocuments) {
  auto c = Collection::Create(4);
  ASSERT_TRUE(c.ok());
  c->AddStream("s0", {}, Point2D{0, 0});
  c->mutable_vocabulary()->Intern("a");
  ASSERT_TRUE(c->AddDocument(0, 2, {0}).ok());
  ASSERT_TRUE(c->AddDocument(0, 1, {0}).ok());  // time goes backwards
  auto runtime = ShardedRuntime::Create(std::move(*c), ShardedOptions(2));
  ASSERT_FALSE(runtime.ok());
  EXPECT_EQ(runtime.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------- parity

class ShardedParityTest : public testing::TestWithParam<size_t> {};

// The headline invariant: tick-by-tick bit identity with the unsharded
// runtime across evicting ticks, a refresh sweep, token-less documents,
// and terms interned mid-run.
TEST_P(ShardedParityTest, TicksMatchUnshardedBitForBit) {
  const size_t num_shards = GetParam();
  auto control = FeedRuntime::Create(MakeSeedCollection(), BaseOptions());
  ASSERT_TRUE(control.ok()) << control.status().ToString();
  auto sharded = ShardedRuntime::Create(MakeSeedCollection(),
                                        ShardedOptions(num_shards));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_EQ(sharded->num_shards(), num_shards);

  ExpectShardedMatchesUnsharded(*sharded, *control);

  Rng control_rng(4242), sharded_rng(4242);
  size_t vocab_size = kVocab;
  for (int tick = 0; tick < kLiveTicks; ++tick) {
    if (tick % 3 == 1) {
      // New term mid-run, used immediately: the coordinator syncs it to
      // every shard at the next tick.
      const std::string name = "live" + std::to_string(tick);
      const TermId a = control->mutable_vocabulary()->Intern(name);
      const TermId b = sharded->mutable_vocabulary()->Intern(name);
      ASSERT_EQ(a, b);
      vocab_size = control->collection().vocabulary().size();
    }
    Snapshot control_snap = MakeSnapshot(control_rng, vocab_size);
    Snapshot sharded_snap = MakeSnapshot(sharded_rng, vocab_size);

    auto control_stats = control->Tick(std::move(control_snap));
    auto sharded_stats = sharded->Tick(std::move(sharded_snap));
    ASSERT_TRUE(control_stats.ok()) << control_stats.status().ToString();
    ASSERT_TRUE(sharded_stats.ok()) << sharded_stats.status().ToString();
    ExpectSameTickStats(*sharded_stats, *control_stats);
    ExpectShardedMatchesUnsharded(*sharded, *control);
  }
}

TEST_P(ShardedParityTest, SearchMatchesUnshardedIncludingAccessCounts) {
  const size_t num_shards = GetParam();
  auto control = FeedRuntime::Create(MakeSeedCollection(), BaseOptions());
  ASSERT_TRUE(control.ok()) << control.status().ToString();
  auto sharded = ShardedRuntime::Create(MakeSeedCollection(),
                                        ShardedOptions(num_shards));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  Rng control_rng(99), sharded_rng(99), query_rng(1234);
  uint64_t last_generation = 0;
  for (int tick = 0; tick < kLiveTicks; ++tick) {
    ASSERT_TRUE(control->Tick(MakeSnapshot(control_rng, kVocab)).ok());
    ASSERT_TRUE(sharded->Tick(MakeSnapshot(sharded_rng, kVocab)).ok());

    // Random single- and multi-term queries at several k, including k=1
    // (tightest tie boundary) and a k past every match (no early exit).
    for (int q = 0; q < 6; ++q) {
      std::vector<TermId> query;
      const size_t terms = 1 + query_rng.NextUint64(3);
      for (size_t i = 0; i < terms; ++i) {
        query.push_back(static_cast<TermId>(query_rng.NextUint64(kVocab)));
      }
      for (size_t k : {size_t{1}, size_t{5}, size_t{200}}) {
        ExpectSameSearch(sharded->Search(query, k), control->Search(query, k),
                         "random query");
      }
    }
    // Duplicated terms dedupe identically.
    ExpectSameSearch(sharded->Search(std::vector<TermId>{3, 3, 7, 3}, 5),
                     control->Search(std::vector<TermId>{3, 3, 7, 3}, 5), "duplicate terms");
    // k = 0 and unknown-term queries degenerate identically.
    ExpectSameSearch(sharded->Search(std::vector<TermId>{5}, 0), control->Search(std::vector<TermId>{5}, 0),
                     "k=0");

    // The composed generation (sum of shard generations) must strictly
    // increase whenever any shard republished.
    const auto view = sharded->search_view();
    ASSERT_NE(view, nullptr);
    EXPECT_GE(view->generation, last_generation);
    last_generation = view->generation;
  }
}

// Ties must resolve by GLOBAL document id whatever shard the tied
// documents live in: a corpus where every document carries the same single
// term yields score-tied postings, so top-k is decided purely by the
// tie-break.
TEST_P(ShardedParityTest, TieBoundariesResolveByGlobalDocId) {
  const size_t num_shards = GetParam();
  auto seed = [] {
    auto c = Collection::Create(3);
    EXPECT_TRUE(c.ok());
    for (size_t s = 0; s < 4; ++s) {
      c->AddStream("s" + std::to_string(s), {},
                   Point2D{static_cast<double>(s), 0.0});
    }
    Vocabulary* v = c->mutable_vocabulary();
    for (size_t t = 0; t < 8; ++t) v->Intern("t" + std::to_string(t));
    for (Timestamp w = 0; w < 3; ++w) {
      for (StreamId s = 0; s < 4; ++s) {
        EXPECT_TRUE(c->AddDocument(s, w, {0}).ok());
        EXPECT_TRUE(c->AddDocument(s, w, {0, 1}).ok());
      }
    }
    return std::move(*c);
  };
  FeedRuntimeOptions base = BaseOptions();
  base.retention_window = 5;
  auto control = FeedRuntime::Create(seed(), base);
  ASSERT_TRUE(control.ok()) << control.status().ToString();
  auto sharded = ShardedRuntime::Create(seed(),
                                        ShardedOptions(num_shards, base));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  for (int tick = 0; tick < 6; ++tick) {
    Snapshot snap;
    for (StreamId s = 0; s < 4; ++s) {
      SnapshotDocument d0;
      d0.stream = s;
      d0.tokens = {0};
      snap.push_back(d0);
      SnapshotDocument d1;
      d1.stream = s;
      d1.tokens = {0, 1};
      snap.push_back(d1);
    }
    ASSERT_TRUE(control->Tick(Snapshot(snap)).ok());
    ASSERT_TRUE(sharded->Tick(std::move(snap)).ok());
    for (size_t k = 1; k <= 9; ++k) {
      ExpectSameSearch(sharded->Search(std::vector<TermId>{0}, k), control->Search(std::vector<TermId>{0}, k),
                       "tied single term");
      ExpectSameSearch(sharded->Search(std::vector<TermId>{0, 1}, k), control->Search(std::vector<TermId>{0, 1}, k),
                       "tied pair");
    }
  }
}

// Tier parity (ISSUE 10): every term's cold aggregates live in exactly one
// shard and are bit-identical to the unsharded control's tier. Covers
// K ∈ {1,2,4} (and more) via the shard-count matrix.
TEST_P(ShardedParityTest, ColdTierRowsMatchUnshardedAndStayDisjoint) {
  const size_t num_shards = GetParam();
  auto control = FeedRuntime::Create(MakeSeedCollection(), BaseOptions());
  ASSERT_TRUE(control.ok()) << control.status().ToString();
  auto sharded = ShardedRuntime::Create(MakeSeedCollection(),
                                        ShardedOptions(num_shards));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  Rng control_rng(2718), sharded_rng(2718);
  for (int tick = 0; tick < kLiveTicks; ++tick) {
    ASSERT_TRUE(control->Tick(MakeSnapshot(control_rng, kVocab)).ok());
    ASSERT_TRUE(sharded->Tick(MakeSnapshot(sharded_rng, kVocab)).ok());
  }
  const ColdTier* control_tier = control->history();
  ASSERT_NE(control_tier, nullptr);
  ASSERT_EQ(control_tier->folded_until(), control->window_start());
  ASSERT_GE(control_tier->folded_until(), 1);

  const ShardMap map(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    const ColdTier* tier = sharded->shard(s).history();
    ASSERT_NE(tier, nullptr) << "shard " << s;
    // Every shard tier walks the same watermarks in lockstep.
    EXPECT_EQ(tier->covered_start(), control_tier->covered_start());
    EXPECT_EQ(tier->folded_until(), control_tier->folded_until());
  }
  for (TermId t = 0; t < kVocab; ++t) {
    const size_t owner = map.shard_of(t);
    for (size_t s = 0; s < num_shards; ++s) {
      const std::vector<ColdRow> rows =
          sharded->shard(s).history()->TermRows(t);
      if (s == owner) {
        EXPECT_TRUE(rows == control_tier->TermRows(t))
            << "term " << t << " owner shard " << s;
      } else {
        EXPECT_TRUE(rows.empty())
            << "term " << t << " leaked into non-owning shard " << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedParityTest,
                         testing::ValuesIn(TestShardCounts()),
                         [](const testing::TestParamInfo<size_t>& info) {
                           return "K" + std::to_string(info.param);
                         });

// ------------------------------------------- shard count x thread count

// The shard count and the coordinator pool size are independent axes:
// whatever their combination, the observable state is the unsharded
// serial runtime's.
TEST(ShardedRuntimeTest, ThreadCountNeverChangesResults) {
  FeedRuntimeOptions serial = BaseOptions();
  serial.num_threads = 1;
  auto control = FeedRuntime::Create(MakeSeedCollection(), serial);
  ASSERT_TRUE(control.ok()) << control.status().ToString();
  Rng control_rng(5);
  for (int tick = 0; tick < 6; ++tick) {
    ASSERT_TRUE(control->Tick(MakeSnapshot(control_rng, kVocab)).ok());
  }

  for (size_t num_threads : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t num_shards : {size_t{2}, size_t{3}}) {
      FeedRuntimeOptions base = BaseOptions();
      base.num_threads = num_threads;
      auto sharded = ShardedRuntime::Create(
          MakeSeedCollection(), ShardedOptions(num_shards, base));
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      Rng rng(5);
      for (int tick = 0; tick < 6; ++tick) {
        ASSERT_TRUE(sharded->Tick(MakeSnapshot(rng, kVocab)).ok());
      }
      ExpectShardedMatchesUnsharded(*sharded, *control);
      ExpectSameSearch(sharded->Search(std::vector<TermId>{1, 2, 3}, 10),
                       control->Search(std::vector<TermId>{1, 2, 3}, 10), "after thread sweep");
    }
  }
}

// ------------------------------------------------------- per-shard mmap

// kMmap under sharding writes one tier file per shard (`<path>.shard<i>`),
// each independently reopenable with exactly the owning shard's rows.
TEST(ShardedRuntimeTest, MmapHistoryWritesOneRecoverableTierFilePerShard) {
  std::string dir = testing::TempDir();
  if (!dir.empty() && dir.back() != '/') dir += '/';
  const std::string path = dir + "sharded_tier.stb";
  const size_t num_shards = 2;
  for (size_t s = 0; s < num_shards; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }

  FeedRuntimeOptions base = BaseOptions();
  base.history_mode = HistoryMode::kMmap;
  base.history_path = path;
  auto sharded = ShardedRuntime::Create(MakeSeedCollection(),
                                        ShardedOptions(num_shards, base));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  Rng rng(31);
  for (int tick = 0; tick < kLiveTicks; ++tick) {
    ASSERT_TRUE(sharded->Tick(MakeSnapshot(rng, kVocab)).ok());
  }

  for (size_t s = 0; s < num_shards; ++s) {
    const std::string shard_path = path + ".shard" + std::to_string(s);
    auto reopened = ColdTier::Open(shard_path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    const ColdTier* live = sharded->shard(s).history();
    ASSERT_NE(live, nullptr);
    EXPECT_EQ(reopened->folded_until(), live->folded_until());
    for (TermId t = 0; t < kVocab; ++t) {
      EXPECT_TRUE(reopened->TermRows(t) == live->TermRows(t))
          << "shard " << s << " term " << t;
    }
    std::remove(shard_path.c_str());
  }
}

// ------------------------------------------------------ coordinator cache

TEST(ShardedRuntimeTest, CoordinatorCacheServesRepeatsAndInvalidatesOnTick) {
  FeedRuntimeOptions base = BaseOptions();
  base.search_cache_entries = 16;
  auto sharded = ShardedRuntime::Create(MakeSeedCollection(),
                                        ShardedOptions(3, base));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  const std::vector<TermId> query = {1, 2, 3};
  const TopKResult first = sharded->Search(query, 5);
  const TopKResult second = sharded->Search(query, 5);
  EXPECT_EQ(first.docs, second.docs);
  QueryCacheStats stats = sharded->search_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);

  Rng rng(3);
  ASSERT_TRUE(sharded->Tick(MakeSnapshot(rng, kVocab)).ok());
  (void)sharded->Search(query, 5);  // new generation: a miss, not a stale hit
  stats = sharded->search_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

// -------------------------------------------------------- fault injection

#ifdef STBURST_FAULT_INJECTION

void ExpectIdenticalShardedRuntimes(const ShardedRuntime& a,
                                    const ShardedRuntime& b) {
  ASSERT_EQ(a.num_shards(), b.num_shards());
  EXPECT_EQ(a.timeline_length(), b.timeline_length());
  EXPECT_EQ(a.window_start(), b.window_start());
  EXPECT_EQ(a.doc_id_base(), b.doc_id_base());
  for (size_t s = 0; s < a.num_shards(); ++s) {
    const Collection& ca = a.shard(s).collection();
    const Collection& cb = b.shard(s).collection();
    ASSERT_EQ(ca.num_documents(), cb.num_documents()) << "shard " << s;
    ASSERT_EQ(ca.doc_id_base(), cb.doc_id_base()) << "shard " << s;
    ASSERT_EQ(ca.timeline_length(), cb.timeline_length()) << "shard " << s;
    for (size_t i = 0; i < ca.documents().size(); ++i) {
      EXPECT_EQ(ca.documents()[i].tokens, cb.documents()[i].tokens);
    }
    ExpectSameTierState(a.shard(s).history(), b.shard(s).history(),
                        "fault tier parity");
  }
  for (TermId t = 0; t < a.vocabulary().size(); ++t) {
    ExpectSamePatterns(a.patterns(t), b.patterns(t), t);
    EXPECT_EQ(a.staleness(t), b.staleness(t)) << "term " << t;
  }
  ExpectSameSearch(a.Search(std::vector<TermId>{1, 2, 3}, 10), b.Search(std::vector<TermId>{1, 2, 3}, 10),
                   "fault parity");
}

struct ShardedSweepCase {
  std::string_view site;
  fault::FailureKind kind;
};

std::vector<ShardedSweepCase> ShardedSweepCases() {
  std::vector<ShardedSweepCase> cases;
  for (std::string_view site : fault::RegisteredSites()) {
    cases.push_back({site, fault::FailureKind::kStatus});
    cases.push_back({site, fault::FailureKind::kBadAlloc});
  }
  return cases;
}

std::string ShardedSweepCaseName(
    const testing::TestParamInfo<ShardedSweepCase>& info) {
  std::string name(info.param.site);
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  name += info.param.kind == fault::FailureKind::kStatus ? "_status"
                                                         : "_bad_alloc";
  return name;
}

class ShardedFaultSweepTest
    : public testing::TestWithParam<ShardedSweepCase> {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

// Every registered site — the per-shard ones AND the coordinator's
// "sharded.commit" gate — must roll the whole sharded tick back: one
// shard's failure leaves every shard bit-identical to a sharded control
// that never saw the snapshot, and the next clean tick converges.
TEST_P(ShardedFaultSweepTest, OneShardFailureRollsBackEveryShard) {
  const ShardedSweepCase& param = GetParam();
  fault::DisarmAll();
  const size_t num_shards = 3;

  auto subject = ShardedRuntime::Create(MakeSeedCollection(),
                                        ShardedOptions(num_shards));
  ASSERT_TRUE(subject.ok()) << subject.status().ToString();
  auto control = ShardedRuntime::Create(MakeSeedCollection(),
                                        ShardedOptions(num_shards));
  ASSERT_TRUE(control.ok()) << control.status().ToString();

  Rng subject_rng(4242), control_rng(4242);
  for (int i = 0; i < 8; ++i) {  // overfills the window: eviction sites fire
    ASSERT_TRUE(subject->Tick(MakeSnapshot(subject_rng, kVocab)).ok());
    ASSERT_TRUE(control->Tick(MakeSnapshot(control_rng, kVocab)).ok());
  }
  ExpectIdenticalShardedRuntimes(*subject, *control);

  Snapshot doomed = MakeSnapshot(subject_rng, kVocab);
  Snapshot doomed_copy = MakeSnapshot(control_rng, kVocab);
  fault::Arm(param.site, /*nth_hit=*/1, param.kind);
  auto failed = subject->Tick(std::move(doomed));
  ASSERT_FALSE(failed.ok()) << "armed site " << param.site << " never fired";
  EXPECT_GE(fault::HitCount(param.site), 1u);
  fault::DisarmAll();

  EXPECT_FALSE(subject->wedged());
  ExpectIdenticalShardedRuntimes(*subject, *control);

  Snapshot control_doomed = doomed_copy;
  ASSERT_TRUE(subject->Tick(std::move(doomed_copy)).ok());
  ASSERT_TRUE(control->Tick(std::move(control_doomed)).ok());
  ExpectIdenticalShardedRuntimes(*subject, *control);
}

INSTANTIATE_TEST_SUITE_P(AllSites, ShardedFaultSweepTest,
                         testing::ValuesIn(ShardedSweepCases()),
                         ShardedSweepCaseName);

// The coordinator gate specifically: it fires after EVERY shard staged
// cleanly, so its rollback proves the abort path of fully staged
// transactions, and the published read plane must not move (per-shard
// snapshot pointer identity).
TEST(ShardedFaultTest, CommitGateAbortsEveryFullyStagedShard) {
  fault::DisarmAll();
  auto subject = ShardedRuntime::Create(MakeSeedCollection(),
                                        ShardedOptions(4));
  ASSERT_TRUE(subject.ok()) << subject.status().ToString();
  Rng rng(17);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(subject->Tick(MakeSnapshot(rng, kVocab)).ok());
  }
  const auto before = subject->search_view();
  ASSERT_NE(before, nullptr);

  fault::Arm("sharded.commit", /*nth_hit=*/1);
  auto failed = subject->Tick(MakeSnapshot(rng, kVocab));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(fault::HitCount("sharded.commit"), 1u);
  fault::DisarmAll();

  EXPECT_FALSE(subject->wedged());
  const auto after = subject->search_view();
  ASSERT_EQ(after->shards.size(), before->shards.size());
  for (size_t s = 0; s < before->shards.size(); ++s) {
    EXPECT_EQ(after->shards[s].get(), before->shards[s].get())
        << "shard " << s << " republished after an aborted tick";
  }

  // A clean tick afterwards commits and republishes.
  ASSERT_TRUE(subject->Tick(MakeSnapshot(rng, kVocab)).ok());
  EXPECT_GT(subject->search_view()->generation, before->generation);
}

// The gate honors the hit counter: ticking cleanly consumes hits, so a
// later nth_hit dooms exactly the nth sharded tick.
TEST(ShardedFaultTest, CommitGateCountsOneHitPerShardedTick) {
  fault::DisarmAll();
  auto subject = ShardedRuntime::Create(MakeSeedCollection(),
                                        ShardedOptions(2));
  ASSERT_TRUE(subject.ok()) << subject.status().ToString();
  Rng rng(23);
  fault::Arm("sharded.commit", /*nth_hit=*/3);
  ASSERT_TRUE(subject->Tick(MakeSnapshot(rng, kVocab)).ok());
  ASSERT_TRUE(subject->Tick(MakeSnapshot(rng, kVocab)).ok());
  ASSERT_FALSE(subject->Tick(MakeSnapshot(rng, kVocab)).ok());
  EXPECT_EQ(fault::HitCount("sharded.commit"), 3u);
  fault::DisarmAll();
  ASSERT_TRUE(subject->Tick(MakeSnapshot(rng, kVocab)).ok());
}

#endif  // STBURST_FAULT_INJECTION

}  // namespace
}  // namespace stburst
