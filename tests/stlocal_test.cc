// Tests for STLocal (core/stlocal, paper Algorithm 2).

#include "stburst/core/stlocal.h"

#include <gtest/gtest.h>

#include "stburst/common/random.h"

namespace stburst {
namespace {

std::vector<Point2D> LinePositions(size_t n, double spacing = 10.0) {
  std::vector<Point2D> pts(n);
  for (size_t i = 0; i < n; ++i) pts[i] = Point2D{spacing * i, 0.0};
  return pts;
}

TEST(StLocal, RejectsWrongSnapshotSize) {
  StLocal miner(LinePositions(3));
  EXPECT_TRUE(miner.ProcessSnapshot({1.0}).IsInvalidArgument());
}

TEST(StLocal, QuietStreamYieldsNothing) {
  StLocal miner(LinePositions(4));
  for (int t = 0; t < 20; ++t) {
    ASSERT_TRUE(miner.ProcessSnapshot({-0.1, -0.2, -0.1, -0.3}).ok());
  }
  EXPECT_TRUE(miner.Finish().empty());
  EXPECT_EQ(miner.current_time(), 20);
}

TEST(StLocal, SingleRegionSingleWindow) {
  // Streams 0 and 1 (adjacent) burst together during [5, 9].
  StLocal miner(LinePositions(4, 1.0));
  for (int t = 0; t < 20; ++t) {
    double hot = (t >= 5 && t <= 9) ? 2.0 : -0.5;
    ASSERT_TRUE(miner.ProcessSnapshot({hot, hot, -0.5, -0.5}).ok());
  }
  auto windows = miner.Finish();
  ASSERT_GE(windows.size(), 1u);
  const auto& top = windows[0];
  EXPECT_EQ(top.streams, (std::vector<StreamId>{0, 1}));
  EXPECT_EQ(top.timeframe, (Interval{5, 9}));
  EXPECT_NEAR(top.score, 2.0 * 2.0 * 5, 1e-9);  // 2 streams x 2.0 x 5 steps
}

TEST(StLocal, WindowScoreIsSumOfRScores) {
  StLocal miner(LinePositions(2, 1.0));
  std::vector<double> scores = {1.0, 0.5, 2.0};  // varying burst strengths
  for (double s : scores) {
    ASSERT_TRUE(miner.ProcessSnapshot({s, s}).ok());
  }
  auto windows = miner.Finish();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_NEAR(windows[0].score, 2.0 * (1.0 + 0.5 + 2.0), 1e-9);
  EXPECT_EQ(windows[0].timeframe, (Interval{0, 2}));
}

TEST(StLocal, SequencePrunedWhenTotalGoesNegative) {
  StLocal miner(LinePositions(2, 1.0));
  // Burst, then a long negative tail that drives S.total below zero.
  ASSERT_TRUE(miner.ProcessSnapshot({1.0, 1.0}).ok());
  EXPECT_EQ(miner.num_live_sequences(), 1u);
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(miner.ProcessSnapshot({-0.5, -0.5}).ok());
  }
  EXPECT_EQ(miner.num_live_sequences(), 0u);  // retired by line 11-12
  // The maximal window from before the decline is preserved.
  auto windows = miner.Finish();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].timeframe, (Interval{0, 0}));
  EXPECT_NEAR(windows[0].score, 2.0, 1e-9);
}

TEST(StLocal, RegionReappearingExtendsItsSequence) {
  // The same region bursts in two phases separated by a mild dip; the
  // maximal window spans both phases when the dip is shallow.
  StLocal miner(LinePositions(2, 1.0));
  for (int t = 0; t < 3; ++t) ASSERT_TRUE(miner.ProcessSnapshot({2.0, 2.0}).ok());
  ASSERT_TRUE(miner.ProcessSnapshot({-0.2, -0.2}).ok());
  for (int t = 0; t < 3; ++t) ASSERT_TRUE(miner.ProcessSnapshot({2.0, 2.0}).ok());
  auto windows = miner.Finish();
  ASSERT_GE(windows.size(), 1u);
  EXPECT_EQ(windows[0].timeframe, (Interval{0, 6}));
  EXPECT_EQ(miner.current_time(), 7);
}

TEST(StLocal, DistinctRegionsTrackedIndependently) {
  // Two far-apart regions bursting at different times.
  StLocal miner(LinePositions(4, 100.0));
  for (int t = 0; t < 30; ++t) {
    double left = (t >= 2 && t <= 6) ? 1.5 : -0.4;
    double right = (t >= 15 && t <= 22) ? 1.0 : -0.4;
    ASSERT_TRUE(miner.ProcessSnapshot({left, left, right, right}).ok());
  }
  auto windows = miner.Finish();
  ASSERT_GE(windows.size(), 2u);
  bool saw_left = false, saw_right = false;
  for (const auto& w : windows) {
    if (w.streams == std::vector<StreamId>{0, 1}) {
      EXPECT_EQ(w.timeframe, (Interval{2, 6}));
      saw_left = true;
    }
    if (w.streams == std::vector<StreamId>{2, 3}) {
      EXPECT_EQ(w.timeframe, (Interval{15, 22}));
      saw_right = true;
    }
  }
  EXPECT_TRUE(saw_left);
  EXPECT_TRUE(saw_right);
}

TEST(StLocal, MinWindowScoreFilters) {
  StLocalOptions opts;
  opts.min_window_score = 10.0;
  StLocal miner(LinePositions(2, 1.0), opts);
  ASSERT_TRUE(miner.ProcessSnapshot({1.0, 1.0}).ok());  // w-score 2 < 10
  EXPECT_TRUE(miner.Finish().empty());
}

TEST(StLocal, OpenWindowCountsAreBounded) {
  Rng rng(3);
  size_t n = 12;
  StLocal miner(LinePositions(n, 5.0));
  for (int t = 0; t < 60; ++t) {
    std::vector<double> b(n);
    for (auto& v : b) v = rng.Uniform(-1.0, 1.0);
    ASSERT_TRUE(miner.ProcessSnapshot(b).ok());
    EXPECT_LE(miner.num_live_sequences(),
              n * static_cast<size_t>(miner.current_time()));
    EXPECT_GE(miner.num_open_windows(), 0u);
  }
}

TEST(StLocal, SharedBinningMatchesOwnBinning) {
  // A miner handed a prebuilt binning of its positions must behave exactly
  // like one that builds its own — the batch miner relies on this to share
  // one binning across every term of a vocabulary.
  Rng rng(21);
  const size_t n = 9;
  auto positions = LinePositions(n, 3.0);
  auto binning = SpatialBinning::Create(positions);
  ASSERT_TRUE(binning.ok());

  StLocal own(positions);
  StLocal shared(positions, {}, &*binning);
  for (int t = 0; t < 50; ++t) {
    std::vector<double> b(n);
    for (auto& v : b) v = rng.Uniform(-1.0, 1.5);
    ASSERT_TRUE(own.ProcessSnapshot(b).ok());
    ASSERT_TRUE(shared.ProcessSnapshot(b).ok());
    EXPECT_EQ(own.num_live_sequences(), shared.num_live_sequences());
  }
  auto a = own.Finish();
  auto c = shared.Finish();
  ASSERT_EQ(a.size(), c.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].region, c[i].region);
    EXPECT_EQ(a[i].streams, c[i].streams);
    EXPECT_EQ(a[i].timeframe, c[i].timeframe);
    EXPECT_EQ(a[i].score, c[i].score);
  }
}

TEST(StLocal, RejectsSharedBinningOfWrongSize) {
  auto binning = SpatialBinning::Create(LinePositions(5));
  ASSERT_TRUE(binning.ok());
  StLocal miner(LinePositions(3), {}, &*binning);
  EXPECT_TRUE(miner.ProcessSnapshot({0.1, 0.2, 0.3}).IsInvalidArgument());
}

void ExpectSameWindows(const std::vector<SpatiotemporalWindow>& got,
                       const std::vector<SpatiotemporalWindow>& want,
                       Timestamp shift) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].region, want[i].region) << "window " << i;
    EXPECT_EQ(got[i].streams, want[i].streams) << "window " << i;
    EXPECT_EQ(got[i].timeframe.start, want[i].timeframe.start + shift);
    EXPECT_EQ(got[i].timeframe.end, want[i].timeframe.end + shift);
    EXPECT_DOUBLE_EQ(got[i].score, want[i].score) << "window " << i;
  }
}

TEST(StLocalEviction, MatchesFreshMinerOverTheWindow) {
  // Randomized burstiness; after EvictBefore(cutoff) and more snapshots,
  // the evicted miner must be indistinguishable from a fresh miner fed only
  // the retained snapshots (its output shifted to absolute time).
  Rng rng(31);
  const size_t n = 8;
  const Timestamp cutoff = 17;
  auto positions = LinePositions(n, 2.0);
  StLocalOptions opts;
  opts.track_history = true;
  StLocal evicted(positions, opts);

  std::vector<std::vector<double>> snapshots;
  for (int t = 0; t < 40; ++t) {
    std::vector<double> b(n);
    for (auto& v : b) v = rng.Uniform(-1.0, 1.2);
    snapshots.push_back(b);
    if (t < 25) ASSERT_TRUE(evicted.ProcessSnapshot(b).ok());
  }
  ASSERT_TRUE(evicted.EvictBefore(cutoff).ok());
  EXPECT_EQ(evicted.window_start(), cutoff);
  EXPECT_EQ(evicted.current_time(), 25);
  for (int t = 25; t < 40; ++t) {
    ASSERT_TRUE(evicted.ProcessSnapshot(snapshots[t]).ok());
  }

  StLocal fresh(positions);  // no history tracking needed for the reference
  for (int t = cutoff; t < 40; ++t) {
    ASSERT_TRUE(fresh.ProcessSnapshot(snapshots[t]).ok());
  }
  EXPECT_EQ(evicted.num_live_sequences(), fresh.num_live_sequences());
  EXPECT_EQ(evicted.num_open_windows(), fresh.num_open_windows());
  ExpectSameWindows(evicted.Finish(), fresh.Finish(), cutoff);
}

TEST(StLocalEviction, SequenceStraddlingTheCutoffIsRebornInsideTheWindow) {
  // One region bursts over [2, 8]; evicting at 5 must truncate its sequence
  // to the retained span: the window is reborn at t=5, scored only from the
  // retained snapshots — exactly what a windowed batch re-mine reports.
  StLocalOptions opts;
  opts.track_history = true;
  StLocal miner(LinePositions(2, 1.0), opts);
  for (int t = 0; t < 12; ++t) {
    const double hot = (t >= 2 && t <= 8) ? 2.0 : -0.5;
    ASSERT_TRUE(miner.ProcessSnapshot({hot, hot}).ok());
  }
  ASSERT_TRUE(miner.EvictBefore(5).ok());
  auto windows = miner.Finish();
  ASSERT_GE(windows.size(), 1u);
  EXPECT_EQ(windows[0].streams, (std::vector<StreamId>{0, 1}));
  EXPECT_EQ(windows[0].timeframe, (Interval{5, 8}));
  // 2 streams × 2.0 × the 4 retained burst steps — the evicted prefix's
  // contribution is gone from the accumulated score.
  EXPECT_NEAR(windows[0].score, 2.0 * 2.0 * 4, 1e-9);
}

TEST(StLocalEviction, EvictedRegionReEmergesAsAFreshSequence) {
  // A region bursts, leaves the window entirely, then re-emerges: the
  // pre-cutoff life must not leak into the re-emerged sequence.
  StLocalOptions opts;
  opts.track_history = true;
  StLocal miner(LinePositions(2, 1.0), opts);
  auto feed = [&](double v, int times) {
    for (int i = 0; i < times; ++i) {
      ASSERT_TRUE(miner.ProcessSnapshot({v, v}).ok());
    }
  };
  feed(3.0, 3);    // burst [0, 2]
  feed(-0.1, 4);   // quiet [3, 6]
  ASSERT_TRUE(miner.EvictBefore(4).ok());
  EXPECT_EQ(miner.num_live_sequences(), 0u);  // old life fully evicted
  feed(1.0, 3);    // re-emerges [7, 9]
  EXPECT_EQ(miner.num_live_sequences(), 1u);
  auto windows = miner.Finish();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].timeframe, (Interval{7, 9}));
  EXPECT_NEAR(windows[0].score, 2.0 * 1.0 * 3, 1e-9);
}

TEST(StLocalEviction, ValidatesCutoffAndHistoryTracking) {
  StLocal no_history(LinePositions(2, 1.0));
  ASSERT_TRUE(no_history.ProcessSnapshot({1.0, 1.0}).ok());
  EXPECT_TRUE(no_history.EvictBefore(0).ok());  // no-op needs no history
  EXPECT_TRUE(no_history.EvictBefore(1).IsFailedPrecondition());

  StLocalOptions opts;
  opts.track_history = true;
  StLocal tracked(LinePositions(2, 1.0), opts);
  ASSERT_TRUE(tracked.ProcessSnapshot({1.0, 1.0}).ok());
  EXPECT_TRUE(tracked.EvictBefore(2).IsOutOfRange());
  ASSERT_TRUE(tracked.EvictBefore(1).ok());  // evict everything consumed
  EXPECT_EQ(tracked.num_live_sequences(), 0u);
  EXPECT_EQ(tracked.window_start(), 1);
  EXPECT_EQ(tracked.current_time(), 1);

  // The rebased overload validates its span against the retained width.
  std::vector<double> wrong(3, 0.0);
  EXPECT_TRUE(tracked.EvictBefore(1, wrong).IsInvalidArgument());
  EXPECT_TRUE(
      tracked.EvictBefore(0, std::span<const double>{}).IsInvalidArgument());
}

TEST(MineRegionalPatterns, EndToEndWithExpectedModel) {
  // 5 streams on a line; streams 1-2 burst on [30, 39] over noisy background.
  Rng rng(9);
  TermSeries series(5, 80);
  for (StreamId s = 0; s < 5; ++s) {
    for (Timestamp t = 0; t < 80; ++t) {
      series.set(s, t, 1.0 + 0.2 * rng.NextDouble());
    }
  }
  for (StreamId s = 1; s <= 2; ++s) {
    for (Timestamp t = 30; t < 40; ++t) series.add(s, t, 8.0);
  }
  auto positions = LinePositions(5, 1.0);
  auto windows = MineRegionalPatterns(
      series, positions, [] { return std::make_unique<GlobalMeanModel>(); });
  ASSERT_TRUE(windows.ok());
  ASSERT_GE(windows->size(), 1u);
  const auto& top = (*windows)[0];
  // The top window covers the bursting streams and overlaps the burst.
  for (StreamId s : {StreamId{1}, StreamId{2}}) {
    EXPECT_TRUE(std::binary_search(top.streams.begin(), top.streams.end(), s));
  }
  EXPECT_TRUE(top.timeframe.Intersects(Interval{30, 39}));
}

TEST(OnlineRegionalMiner, PushParityWithBatchDriver) {
  // Pushing the columns one at a time must reproduce MineRegionalPatterns
  // exactly (the batch driver is now a replay through the online miner, but
  // this pins the equivalence down as a contract).
  Rng rng(13);
  TermSeries series(6, 50);
  for (StreamId s = 0; s < 6; ++s) {
    for (Timestamp t = 0; t < 50; ++t) {
      series.set(s, t, rng.Exponential(1.5));
    }
  }
  for (StreamId s = 2; s <= 3; ++s) {
    for (Timestamp t = 20; t < 28; ++t) series.add(s, t, 6.0);
  }
  auto positions = LinePositions(6, 1.0);
  auto factory = [] { return std::make_unique<GlobalMeanModel>(); };

  auto batch = MineRegionalPatterns(series, positions, factory);
  ASSERT_TRUE(batch.ok());

  OnlineRegionalMiner online(positions, factory);
  for (Timestamp t = 0; t < series.timeline_length(); ++t) {
    ASSERT_TRUE(online.Push(series.SnapshotColumn(t)).ok());
  }
  EXPECT_EQ(online.current_time(), series.timeline_length());
  auto windows = online.Finish();

  ASSERT_EQ(windows.size(), batch->size());
  for (size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].region, (*batch)[i].region);
    EXPECT_EQ(windows[i].streams, (*batch)[i].streams);
    EXPECT_EQ(windows[i].timeframe, (*batch)[i].timeframe);
    EXPECT_DOUBLE_EQ(windows[i].score, (*batch)[i].score);
  }
}

TEST(OnlineRegionalMiner, PushFromIndexRejectsEvictedTimestamps) {
  // A lagging regional miner must fail loudly rather than silently ingest
  // zeros for timestamps the index has evicted.
  auto c = Collection::Create(3);
  ASSERT_TRUE(c.ok());
  c->AddStream("s", {}, {});
  TermId quake = c->mutable_vocabulary()->Intern("quake");
  for (Timestamp t = 0; t < 3; ++t) (void)c->AddDocument(0, t, {quake});
  FrequencyIndex freq = FrequencyIndex::Build(*c);
  ASSERT_TRUE(freq.EvictBefore(2).ok());

  auto factory = [] { return std::make_unique<GlobalMeanModel>(); };
  OnlineRegionalMiner lagging(c->StreamPositions(), factory);
  EXPECT_TRUE(lagging.PushFromIndex(freq, quake).IsFailedPrecondition());
}

TEST(OnlineRegionalMiner, PushFromIndexFollowsAppends) {
  auto c = Collection::Create(4);
  ASSERT_TRUE(c.ok());
  for (int s = 0; s < 3; ++s) c->AddStream("s", {}, {});
  TermId quake = c->mutable_vocabulary()->Intern("quake");
  for (Timestamp t = 0; t < 4; ++t) {
    (void)c->AddDocument(0, t, {quake});
  }
  FrequencyIndex freq = FrequencyIndex::Build(*c);

  auto factory = [] { return std::make_unique<GlobalMeanModel>(); };
  OnlineRegionalMiner online(c->StreamPositions(), factory);
  while (online.current_time() < freq.timeline_length()) {
    ASSERT_TRUE(online.PushFromIndex(freq, quake).ok());
  }
  EXPECT_TRUE(online.PushFromIndex(freq, quake).IsFailedPrecondition());

  for (int round = 0; round < 6; ++round) {
    Snapshot snap;
    snap.push_back(SnapshotDocument{0, {quake, quake}});
    snap.push_back(SnapshotDocument{1, {quake, quake}});
    ASSERT_TRUE(c->Append(std::move(snap)).ok());
    ASSERT_TRUE(freq.AppendSnapshot(*c).ok());
    ASSERT_TRUE(online.PushFromIndex(freq, quake).ok());
  }

  auto streamed = online.Finish();
  auto batch = MineRegionalPatterns(freq.DenseSeries(quake),
                                    c->StreamPositions(), factory);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(streamed.size(), batch->size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].streams, (*batch)[i].streams);
    EXPECT_EQ(streamed[i].timeframe, (*batch)[i].timeframe);
    EXPECT_DOUBLE_EQ(streamed[i].score, (*batch)[i].score);
  }
}

TEST(OnlineRegionalMiner, EvictBeforeMatchesBatchMineOverTheWindow) {
  // The windowed-watchlist contract: after EvictBefore(cutoff) — and after
  // further pushes — the online miner equals MineRegionalPatterns over the
  // windowed series, with timeframes absolute. The expected models must
  // rebase (their baselines covered the evicted prefix), which is what
  // makes this strictly stronger than sequence truncation.
  Rng rng(77);
  const size_t n = 6;
  const Timestamp timeline = 36;
  const Timestamp cutoff = 14;
  TermSeries series(n, timeline);
  for (StreamId s = 0; s < n; ++s) {
    for (Timestamp t = 0; t < timeline; ++t) {
      series.set(s, t, rng.Exponential(1.2));
    }
  }
  for (StreamId s = 1; s <= 2; ++s) {
    for (Timestamp t = 10; t < 18; ++t) series.add(s, t, 5.0);  // straddles
    for (Timestamp t = 26; t < 31; ++t) series.add(s, t, 4.0);  // re-emerges
  }
  auto positions = LinePositions(n, 1.0);
  auto factory = [] { return std::make_unique<GlobalMeanModel>(); };

  OnlineRegionalMiner online(positions, factory);
  for (Timestamp t = 0; t < 22; ++t) {
    ASSERT_TRUE(online.Push(series.SnapshotColumn(t)).ok());
  }
  ASSERT_TRUE(online.EvictBefore(cutoff).ok());
  EXPECT_EQ(online.window_start(), cutoff);
  EXPECT_EQ(online.current_time(), 22);
  for (Timestamp t = 22; t < timeline; ++t) {
    ASSERT_TRUE(online.Push(series.SnapshotColumn(t)).ok());
  }

  // Reference: batch mining over exactly the retained window.
  TermSeries windowed(n, timeline - cutoff);
  for (StreamId s = 0; s < n; ++s) {
    for (Timestamp t = cutoff; t < timeline; ++t) {
      windowed.set(s, t - cutoff, series.at(s, t));
    }
  }
  auto batch = MineRegionalPatterns(windowed, positions, factory);
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch->empty());  // the scenario must actually mine windows
  ExpectSameWindows(online.Finish(), *batch, cutoff);
}

TEST(OnlineRegionalMiner, LockstepEvictionWithFrequencyIndex) {
  // The live-feed wiring end to end: a watchlist following a windowed
  // FrequencyIndex through PushFromIndex, evicted in lockstep with it, must
  // keep matching batch mining over the index's own retained window.
  auto c = Collection::Create(1);
  ASSERT_TRUE(c.ok());
  const size_t n = 4;
  for (size_t s = 0; s < n; ++s) {
    c->AddStream("s", {}, Point2D{static_cast<double>(s), 0.0});
  }
  TermId quake = c->mutable_vocabulary()->Intern("quake");
  ASSERT_TRUE(c->AddDocument(0, 0, {quake}).ok());
  FrequencyIndex freq = FrequencyIndex::Build(*c);

  auto factory = [] { return std::make_unique<GlobalMeanModel>(); };
  auto positions = c->StreamPositions();
  OnlineRegionalMiner watch(positions, factory);
  ASSERT_TRUE(watch.PushFromIndex(freq, quake).ok());

  Rng rng(5);
  const Timestamp window = 8;
  for (int round = 0; round < 24; ++round) {
    Snapshot snap;
    for (StreamId s = 0; s < n; ++s) {
      size_t copies = rng.NextUint64(3);
      if (round >= 10 && round < 15 && s < 2) copies += 4;  // a burst
      for (size_t i = 0; i < copies; ++i) {
        snap.push_back(SnapshotDocument{s, {quake}});
      }
    }
    ASSERT_TRUE(c->Append(std::move(snap)).ok());
    ASSERT_TRUE(freq.AppendSnapshot(*c).ok());
    ASSERT_TRUE(watch.PushFromIndex(freq, quake).ok());
    if (c->timeline_length() > window) {
      const Timestamp cutoff = c->timeline_length() - window;
      ASSERT_TRUE(c->EvictBefore(cutoff).ok());
      ASSERT_TRUE(freq.EvictBefore(cutoff).ok());
      ASSERT_TRUE(watch.EvictBefore(freq.window_start()).ok());
    }
  }
  ASSERT_EQ(watch.window_start(), freq.window_start());

  auto batch = MineRegionalPatterns(freq.DenseSeries(quake), positions, factory);
  ASSERT_TRUE(batch.ok());
  ExpectSameWindows(watch.Finish(), *batch, freq.window_start());
}

TEST(MineRegionalPatterns, ScratchReusesModelsAndStaysBitIdentical) {
  // The batch miner's per-worker arena: across a multi-term sweep the
  // factory must run exactly once per stream (models are Reset() between
  // terms), and every window must be bit-identical to the scratch-free path.
  Rng rng(41);
  const size_t n = 7;
  const Timestamp timeline = 40;
  const size_t kTerms = 5;
  auto positions = LinePositions(n, 2.0);

  std::vector<TermSeries> terms;
  for (size_t term = 0; term < kTerms; ++term) {
    TermSeries series(n, timeline);
    for (StreamId s = 0; s < n; ++s) {
      for (Timestamp t = 0; t < timeline; ++t) {
        series.set(s, t, rng.Exponential(1.3));
      }
    }
    const StreamId hot = static_cast<StreamId>(term % (n - 1));
    for (StreamId s = hot; s <= hot + 1; ++s) {
      for (Timestamp t = 8; t < 16; ++t) series.add(s, t, 5.0);
    }
    terms.push_back(std::move(series));
  }

  size_t scratch_allocs = 0;
  size_t fresh_allocs = 0;
  auto scratch_factory = [&scratch_allocs] {
    ++scratch_allocs;
    return std::make_unique<GlobalMeanModel>();
  };
  auto fresh_factory = [&fresh_allocs] {
    ++fresh_allocs;
    return std::make_unique<GlobalMeanModel>();
  };

  RegionalMiningScratch scratch;
  for (size_t term = 0; term < kTerms; ++term) {
    auto with_scratch = MineRegionalPatterns(terms[term], positions,
                                             scratch_factory, {}, nullptr,
                                             &scratch);
    auto without = MineRegionalPatterns(terms[term], positions, fresh_factory);
    ASSERT_TRUE(with_scratch.ok());
    ASSERT_TRUE(without.ok());
    ASSERT_EQ(with_scratch->size(), without->size()) << "term " << term;
    for (size_t i = 0; i < with_scratch->size(); ++i) {
      EXPECT_EQ((*with_scratch)[i].region, (*without)[i].region);
      EXPECT_EQ((*with_scratch)[i].streams, (*without)[i].streams);
      EXPECT_EQ((*with_scratch)[i].timeframe, (*without)[i].timeframe);
      EXPECT_EQ((*with_scratch)[i].score, (*without)[i].score);
    }
  }
  EXPECT_EQ(scratch_allocs, n);           // one model per stream, ever
  EXPECT_EQ(fresh_allocs, n * kTerms);    // the cost the arena removes
  EXPECT_EQ(scratch.models.size(), n);
}

TEST(MineRegionalPatterns, MismatchedPositionsRejected) {
  TermSeries series(3, 10);
  auto result = MineRegionalPatterns(
      series, LinePositions(2), [] { return std::make_unique<GlobalMeanModel>(); });
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace stburst
