// Tests for the Status / StatusOr error model (common/status, statusor).

#include "stburst/common/status.h"

#include <gtest/gtest.h>

#include "stburst/common/statusor.h"

namespace stburst {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(Status, AllFactories) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::OK().ok());
}

TEST(Status, CopyPreservesState) {
  Status s = Status::NotFound("missing");
  Status copy = s;
  EXPECT_EQ(copy, s);
  EXPECT_EQ(copy.message(), "missing");
  // Mutating the copy via assignment does not alter the original.
  copy = Status::OK();
  EXPECT_TRUE(copy.ok());
  EXPECT_FALSE(s.ok());
}

TEST(Status, MoveLeavesSourceReusable) {
  Status s = Status::Internal("boom");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsInternal());
  s = Status::OK();  // reassignment after move is legal
  EXPECT_TRUE(s.ok());
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(Status, OkCodeWithMessageNormalizesToOk) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(Status, CodeToString) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int v) {
  STB_RETURN_NOT_OK(FailIfNegative(v));
  return Status::OK();
}

TEST(Status, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOr, ValueOrReturnsValueOnSuccess) {
  StatusOr<int> v(7);
  EXPECT_EQ(v.value_or(-1), 7);
}

TEST(StatusOr, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(5));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 5);
}

StatusOr<int> HalfIfEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

StatusOr<int> QuarterIfDivisible(int v) {
  int half = 0;
  STB_ASSIGN_OR_RETURN(half, HalfIfEven(v));
  return HalfIfEven(half);
}

TEST(StatusOr, AssignOrReturnMacro) {
  auto ok = QuarterIfDivisible(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_TRUE(QuarterIfDivisible(6).status().IsInvalidArgument());
  EXPECT_TRUE(QuarterIfDivisible(5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace stburst
