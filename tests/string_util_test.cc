// Tests for common/string_util.

#include "stburst/common/string_util.h"

#include <gtest/gtest.h>

namespace stburst {
namespace {

TEST(Split, BasicAndEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ","), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ","), std::vector<std::string>{});
  EXPECT_EQ(Split(",,,", ","), std::vector<std::string>{});
}

TEST(Split, MultipleDelimiters) {
  EXPECT_EQ(Split("a b\tc", " \t"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringPrintf, Formats) {
  EXPECT_EQ(StringPrintf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StringPrintf("%s", ""), "");
  // Long output exercises the resize path.
  std::string wide = StringPrintf("%200d", 5);
  EXPECT_EQ(wide.size(), 200u);
}

}  // namespace
}  // namespace stburst
