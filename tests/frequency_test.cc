// Tests for stream/frequency: TermSeries and FrequencyIndex, including the
// sharded build's bit-for-bit parity with the serial build and the
// append-path parity with a from-scratch rebuild.

#include "stburst/stream/frequency.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "stburst/common/parallel.h"
#include "stburst/common/random.h"

namespace stburst {
namespace {

TEST(TermSeries, ZeroInitializedAndAddressable) {
  TermSeries s(3, 4);
  EXPECT_EQ(s.num_streams(), 3u);
  EXPECT_EQ(s.timeline_length(), 4);
  for (StreamId i = 0; i < 3; ++i) {
    for (Timestamp t = 0; t < 4; ++t) EXPECT_DOUBLE_EQ(s.at(i, t), 0.0);
  }
  s.set(1, 2, 5.0);
  s.add(1, 2, 1.5);
  EXPECT_DOUBLE_EQ(s.at(1, 2), 6.5);
  EXPECT_DOUBLE_EQ(s.Total(), 6.5);
}

TEST(TermSeries, RowColumnAndAggregateViews) {
  TermSeries s(2, 3);
  s.set(0, 0, 1);
  s.set(0, 1, 2);
  s.set(0, 2, 3);
  s.set(1, 0, 10);
  s.set(1, 2, 30);
  std::span<const double> row = s.StreamRow(0);
  EXPECT_EQ(std::vector<double>(row.begin(), row.end()),
            (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(s.SnapshotColumn(0), (std::vector<double>{1, 10}));
  EXPECT_EQ(s.SnapshotColumn(1), (std::vector<double>{2, 0}));
  EXPECT_EQ(s.AggregateOverStreams(), (std::vector<double>{11, 2, 33}));
}

Collection MakeCollection() {
  auto c = Collection::Create(4);
  StreamId s0 = c->AddStream("A", {}, {});
  StreamId s1 = c->AddStream("B", {}, {});
  Vocabulary* v = c->mutable_vocabulary();
  TermId cat = v->Intern("cat");
  TermId dog = v->Intern("dog");
  // doc with "cat cat dog" on (s0, t1); "cat" on (s0, t1) again; "dog" on (s1, t3)
  (void)c->AddDocument(s0, 1, {cat, cat, dog});
  (void)c->AddDocument(s0, 1, {cat});
  (void)c->AddDocument(s1, 3, {dog});
  return std::move(*c);
}

TEST(FrequencyIndex, MergesPostingsAcrossDocuments) {
  Collection c = MakeCollection();
  FrequencyIndex idx = FrequencyIndex::Build(c);
  EXPECT_EQ(idx.num_streams(), 2u);
  EXPECT_EQ(idx.timeline_length(), 4);
  TermId cat = c.vocabulary().Lookup("cat");
  TermId dog = c.vocabulary().Lookup("dog");

  const auto& cat_postings = idx.postings(cat);
  ASSERT_EQ(cat_postings.size(), 1u);  // both docs at (s0, t1) merged
  EXPECT_EQ(cat_postings[0].stream, 0u);
  EXPECT_EQ(cat_postings[0].time, 1);
  EXPECT_DOUBLE_EQ(cat_postings[0].count, 3.0);

  const auto& dog_postings = idx.postings(dog);
  ASSERT_EQ(dog_postings.size(), 2u);
  EXPECT_DOUBLE_EQ(idx.TotalCount(dog), 2.0);
}

TEST(FrequencyIndex, DenseSeriesMatchesPostings) {
  Collection c = MakeCollection();
  FrequencyIndex idx = FrequencyIndex::Build(c);
  TermId cat = c.vocabulary().Lookup("cat");
  TermSeries series = idx.DenseSeries(cat);
  EXPECT_DOUBLE_EQ(series.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(series.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(series.at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(series.Total(), idx.TotalCount(cat));
}

TEST(FrequencyIndex, UnknownTermIsEmpty) {
  Collection c = MakeCollection();
  FrequencyIndex idx = FrequencyIndex::Build(c);
  EXPECT_TRUE(idx.postings(9999).empty());
  EXPECT_DOUBLE_EQ(idx.TotalCount(9999), 0.0);
}

// Randomized corpus with a Zipf-ish token skew, optionally ingested in a
// shuffled document order so buckets exercise the out-of-order sort path.
Collection MakeRandomCorpus(uint64_t seed, size_t num_streams,
                            Timestamp timeline, size_t vocab, size_t num_docs) {
  auto c = Collection::Create(timeline);
  EXPECT_TRUE(c.ok());
  Rng rng(seed);
  for (size_t s = 0; s < num_streams; ++s) {
    c->AddStream("s" + std::to_string(s), {}, {});
  }
  Vocabulary* v = c->mutable_vocabulary();
  for (size_t t = 0; t < vocab; ++t) v->Intern("term" + std::to_string(t));
  for (size_t d = 0; d < num_docs; ++d) {
    StreamId stream = static_cast<StreamId>(rng.NextUint64(num_streams));
    Timestamp time =
        static_cast<Timestamp>(rng.NextUint64(static_cast<uint64_t>(timeline)));
    size_t len = 1 + rng.NextUint64(5);
    std::vector<TermId> tokens;
    for (size_t i = 0; i < len; ++i) {
      TermId tok = static_cast<TermId>(rng.NextUint64(vocab));
      if (rng.Bernoulli(0.5)) tok = static_cast<TermId>(tok % (vocab / 4 + 1));
      tokens.push_back(tok);
    }
    EXPECT_TRUE(c->AddDocument(stream, time, std::move(tokens)).ok());
  }
  return std::move(*c);
}

// Exact (bit-for-bit) posting equality, including float counts.
void ExpectIdenticalIndexes(const FrequencyIndex& a, const FrequencyIndex& b) {
  ASSERT_EQ(a.num_terms(), b.num_terms());
  ASSERT_EQ(a.num_streams(), b.num_streams());
  ASSERT_EQ(a.timeline_length(), b.timeline_length());
  for (TermId t = 0; t < a.num_terms(); ++t) {
    const auto& pa = a.postings(t);
    const auto& pb = b.postings(t);
    ASSERT_EQ(pa.size(), pb.size()) << "term " << t;
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].stream, pb[i].stream) << "term " << t << " entry " << i;
      EXPECT_EQ(pa[i].time, pb[i].time) << "term " << t << " entry " << i;
      EXPECT_EQ(pa[i].count, pb[i].count) << "term " << t << " entry " << i;
    }
  }
}

TEST(FrequencyIndexSharded, BitIdenticalToSerialAt1248Threads) {
  // Large enough that the build actually shards (the serial fallback guards
  // tiny corpora).
  Collection c = MakeRandomCorpus(17, 14, 40, 500, 17000);
  FrequencyIndex serial = FrequencyIndex::Build(c, 1);
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    FrequencyIndex sharded = FrequencyIndex::Build(c, threads);
    ExpectIdenticalIndexes(serial, sharded);
  }
  // The standing-pool variant is just another worker arrangement.
  ExpectIdenticalIndexes(serial, FrequencyIndex::BuildWithPool(c, nullptr));
  for (size_t pool_threads : {1u, 3u}) {
    ThreadPool pool(pool_threads);
    ExpectIdenticalIndexes(serial, FrequencyIndex::BuildWithPool(c, &pool));
  }
}

TEST(FrequencyIndexSharded, BitIdenticalAcrossRandomizedThreadCounts) {
  Rng rng(23);
  for (int trial = 0; trial < 4; ++trial) {
    Collection c = MakeRandomCorpus(100 + static_cast<uint64_t>(trial), 9, 25,
                                    200, 9000);
    FrequencyIndex serial = FrequencyIndex::Build(c, 1);
    for (int i = 0; i < 3; ++i) {
      size_t threads = 2 + rng.NextUint64(9);  // 2..10
      FrequencyIndex sharded = FrequencyIndex::Build(c, threads);
      ExpectIdenticalIndexes(serial, sharded);
    }
  }
}

TEST(FrequencyIndexAppend, BuildOnceEqualsRebuildAfterNAppends) {
  Collection c = MakeRandomCorpus(41, 10, 20, 120, 600);
  FrequencyIndex incremental = FrequencyIndex::Build(c);

  Rng rng(42);
  for (int round = 0; round < 12; ++round) {
    Snapshot snap;
    size_t docs = rng.NextUint64(20);  // occasionally an empty snapshot
    for (size_t d = 0; d < docs; ++d) {
      SnapshotDocument doc;
      doc.stream = static_cast<StreamId>(rng.NextUint64(c.num_streams()));
      size_t len = 1 + rng.NextUint64(4);
      for (size_t i = 0; i < len; ++i) {
        if (rng.Bernoulli(0.05)) {
          // Live feeds intern new vocabulary mid-flight.
          doc.tokens.push_back(c.mutable_vocabulary()->Intern(
              "new" + std::to_string(rng.NextUint64(50))));
        } else {
          doc.tokens.push_back(static_cast<TermId>(rng.NextUint64(120)));
        }
      }
      snap.push_back(std::move(doc));
    }
    ASSERT_TRUE(c.Append(std::move(snap)).ok());
    // Sometimes let several snapshots accumulate before catching up.
    if (round % 3 == 2 || round == 11) {
      ASSERT_TRUE(incremental.AppendSnapshot(c).ok());
    }
  }
  ASSERT_TRUE(incremental.AppendSnapshot(c).ok());
  EXPECT_EQ(incremental.timeline_length(), c.timeline_length());

  ExpectIdenticalIndexes(incremental, FrequencyIndex::Build(c));
  ExpectIdenticalIndexes(incremental, FrequencyIndex::Build(c, 4));
}

TEST(FrequencyIndexAppend, TracksDirtyTerms) {
  auto c = Collection::Create(2);
  ASSERT_TRUE(c.ok());
  StreamId s = c->AddStream("A", {}, {});
  Vocabulary* v = c->mutable_vocabulary();
  TermId cat = v->Intern("cat");
  TermId dog = v->Intern("dog");
  (void)c->AddDocument(s, 0, {cat, dog});
  FrequencyIndex idx = FrequencyIndex::Build(*c);
  EXPECT_TRUE(idx.TakeDirtyTerms().empty());  // a fresh build is clean

  Snapshot snap;
  snap.push_back(SnapshotDocument{s, {dog, dog}});
  ASSERT_TRUE(c->Append(std::move(snap)).ok());
  ASSERT_TRUE(idx.AppendSnapshot(*c).ok());

  EXPECT_EQ(idx.TakeDirtyTerms(), (std::vector<TermId>{dog}));
  EXPECT_TRUE(idx.TakeDirtyTerms().empty());  // taking resets the set
  EXPECT_DOUBLE_EQ(idx.TotalCount(dog), 3.0);
  EXPECT_DOUBLE_EQ(idx.TotalCount(cat), 1.0);
}

TEST(FrequencyIndexAppend, RejectsForeignCollections) {
  auto a = Collection::Create(5);
  ASSERT_TRUE(a.ok());
  a->AddStream("A", {}, {});
  a->mutable_vocabulary()->Intern("x");
  FrequencyIndex idx = FrequencyIndex::Build(*a);

  auto shorter = Collection::Create(3);
  ASSERT_TRUE(shorter.ok());
  shorter->AddStream("A", {}, {});
  shorter->mutable_vocabulary()->Intern("x");
  EXPECT_TRUE(idx.AppendSnapshot(*shorter).IsInvalidArgument());

  auto no_vocab = Collection::Create(6);
  ASSERT_TRUE(no_vocab.ok());
  no_vocab->AddStream("A", {}, {});
  EXPECT_TRUE(idx.AppendSnapshot(*no_vocab).IsInvalidArgument());
}

TEST(FrequencyIndex, SnapshotColumnMatchesDenseSeries) {
  Collection c = MakeRandomCorpus(61, 6, 12, 40, 300);
  FrequencyIndex idx = FrequencyIndex::Build(c);
  for (TermId t : {TermId{0}, TermId{3}, TermId{17}}) {
    TermSeries dense = idx.DenseSeries(t);
    for (Timestamp i = 0; i < idx.timeline_length(); ++i) {
      EXPECT_EQ(idx.SnapshotColumn(t, i), dense.SnapshotColumn(i))
          << "term " << t << " time " << i;
    }
  }
}

TEST(FrequencyIndexRetention, EvictBeforeDropsOldPostingsAndMarksDirty) {
  Collection c = MakeCollection();  // cat at (s0,t1); dog at (s0,t1),(s1,t3)
  FrequencyIndex idx = FrequencyIndex::Build(c);
  TermId cat = c.vocabulary().Lookup("cat");
  TermId dog = c.vocabulary().Lookup("dog");

  ASSERT_TRUE(idx.EvictBefore(2).ok());
  EXPECT_EQ(idx.window_start(), 2);
  EXPECT_EQ(idx.window_length(), 2);
  EXPECT_TRUE(idx.postings(cat).empty());
  ASSERT_EQ(idx.postings(dog).size(), 1u);
  EXPECT_EQ(idx.postings(dog)[0].time, 3);

  // Both terms lost postings and must be reported dirty; re-evicting at the
  // same cutoff is a no-op and dirties nothing.
  EXPECT_EQ(idx.TakeDirtyTerms(), (std::vector<TermId>{cat, dog}));
  ASSERT_TRUE(idx.EvictBefore(2).ok());
  EXPECT_TRUE(idx.TakeDirtyTerms().empty());

  // The dense series now covers the window, with column 0 = window_start.
  TermSeries series = idx.DenseSeries(dog);
  EXPECT_EQ(series.timeline_length(), 2);
  EXPECT_DOUBLE_EQ(series.at(1, 1), 1.0);  // (s1, absolute t3)

  EXPECT_TRUE(idx.EvictBefore(99).IsOutOfRange());
}

TEST(FrequencyIndexRetention, ParallelEvictionMatchesSerial) {
  Collection c = MakeRandomCorpus(77, 8, 30, 150, 4000);
  FrequencyIndex serial = FrequencyIndex::Build(c);
  ASSERT_TRUE(serial.EvictBefore(11).ok());
  const std::vector<TermId> serial_dirty = serial.TakeDirtyTerms();
  EXPECT_FALSE(serial_dirty.empty());
  for (size_t pool_threads : {1u, 3u, 7u}) {
    FrequencyIndex parallel = FrequencyIndex::Build(c);
    ThreadPool pool(pool_threads);
    ASSERT_TRUE(parallel.EvictBefore(11, &pool).ok());
    ExpectIdenticalIndexes(serial, parallel);
    EXPECT_EQ(serial_dirty, parallel.TakeDirtyTerms());
  }
}

TEST(FrequencyIndexRetention, MemoryShrinksWithEviction) {
  Collection c = MakeRandomCorpus(53, 8, 40, 100, 8000);
  FrequencyIndex idx = FrequencyIndex::Build(c);
  const size_t before = idx.PostingsMemoryBytes();
  ASSERT_TRUE(idx.EvictBefore(30).ok());  // keep the last quarter
  const size_t after = idx.PostingsMemoryBytes();
  EXPECT_LT(static_cast<double>(after), 0.6 * static_cast<double>(before))
      << before << " -> " << after;
}

TEST(FrequencyIndexAppend, ParallelSpliceBitIdenticalToSerial) {
  Collection base = MakeRandomCorpus(71, 10, 20, 120, 2000);
  // Two identical live collections appended in lockstep: one index splices
  // serially, the other across pools of several sizes.
  FrequencyIndex serial = FrequencyIndex::Build(base);
  FrequencyIndex pooled = FrequencyIndex::Build(base);
  Rng rng(72);
  for (size_t pool_threads : {1u, 2u, 5u}) {
    Snapshot snap;
    size_t docs = 30 + rng.NextUint64(30);
    for (size_t d = 0; d < docs; ++d) {
      SnapshotDocument doc;
      doc.stream = static_cast<StreamId>(rng.NextUint64(base.num_streams()));
      size_t len = 1 + rng.NextUint64(5);
      for (size_t i = 0; i < len; ++i) {
        doc.tokens.push_back(static_cast<TermId>(rng.NextUint64(120)));
      }
      snap.push_back(std::move(doc));
    }
    ASSERT_TRUE(base.Append(std::move(snap)).ok());
    ASSERT_TRUE(serial.AppendSnapshot(base).ok());
    ThreadPool pool(pool_threads);
    ASSERT_TRUE(pooled.AppendSnapshot(base, &pool).ok());
    ExpectIdenticalIndexes(serial, pooled);
    EXPECT_EQ(serial.TakeDirtyTerms(), pooled.TakeDirtyTerms());
  }
}

TEST(FrequencyIndex, PostingsSortedByStreamThenTime) {
  auto c = Collection::Create(5);
  StreamId s0 = c->AddStream("A", {}, {});
  StreamId s1 = c->AddStream("B", {}, {});
  TermId t = c->mutable_vocabulary()->Intern("x");
  (void)c->AddDocument(s1, 4, {t});
  (void)c->AddDocument(s0, 2, {t});
  (void)c->AddDocument(s1, 0, {t});
  (void)c->AddDocument(s0, 0, {t});
  FrequencyIndex idx = FrequencyIndex::Build(*c);
  const auto& p = idx.postings(t);
  ASSERT_EQ(p.size(), 4u);
  for (size_t i = 1; i < p.size(); ++i) {
    bool ordered = p[i - 1].stream < p[i].stream ||
                   (p[i - 1].stream == p[i].stream && p[i - 1].time < p[i].time);
    EXPECT_TRUE(ordered);
  }
}

TEST(FrequencyIndexRollback, AppendRoundTripRestoresPostings) {
  Collection c = MakeRandomCorpus(51, 6, 10, 80, 300);
  FrequencyIndex idx = FrequencyIndex::Build(c);
  const FrequencyIndex before = idx;

  const auto checkpoint = idx.CheckpointBeforeAppend();
  Rng rng(52);
  for (int round = 0; round < 3; ++round) {
    Snapshot snap;
    for (size_t d = 0; d < 8; ++d) {
      SnapshotDocument doc;
      doc.stream = static_cast<StreamId>(rng.NextUint64(c.num_streams()));
      doc.tokens.push_back(static_cast<TermId>(rng.NextUint64(80)));
      // Mid-flight vocabulary growth must roll back too.
      doc.tokens.push_back(c.mutable_vocabulary()->Intern(
          "new" + std::to_string(rng.NextUint64(20))));
      snap.push_back(std::move(doc));
    }
    ASSERT_TRUE(c.Append(std::move(snap)).ok());
    ASSERT_TRUE(idx.AppendSnapshot(c).ok());
  }
  ASSERT_GT(idx.num_terms(), before.num_terms());

  idx.RollbackAppend(checkpoint);
  ExpectIdenticalIndexes(before, idx);
}

TEST(FrequencyIndexRollback, EvictRoundTripRestoresPostings) {
  Collection c = MakeRandomCorpus(61, 6, 12, 80, 500);
  for (size_t threads : {0u, 3u}) {
    FrequencyIndex idx = FrequencyIndex::Build(c);
    const FrequencyIndex before = idx;
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);

    FrequencyEvictUndo undo;
    ASSERT_TRUE(idx.EvictBefore(7, pool.get(), &undo).ok());
    ASSERT_EQ(idx.window_start(), 7);
    ASSERT_FALSE(undo.removed.empty());

    idx.RollbackEvict(std::move(undo));
    ExpectIdenticalIndexes(before, idx);
    EXPECT_EQ(idx.window_start(), before.window_start());
  }
}

TEST(FrequencyIndexRetention, EvictToEmptyWindowStillMines) {
  // Evicting every retained timestamp leaves L = 0 term series; the miner
  // must treat that as "nothing to mine", not a checked crash.
  auto c = Collection::Create(2);
  ASSERT_TRUE(c.ok());
  StreamId s = c->AddStream("A", {}, {});
  TermId w = c->mutable_vocabulary()->Intern("w");
  ASSERT_TRUE(c->AddDocument(s, 0, {w}).ok());
  ASSERT_TRUE(c->AddDocument(s, 1, {w}).ok());
  FrequencyIndex idx = FrequencyIndex::Build(*c);
  ASSERT_TRUE(c->EvictBefore(2).ok());
  ASSERT_TRUE(idx.EvictBefore(2).ok());
  EXPECT_TRUE(idx.postings(w).empty());
  EXPECT_EQ(idx.window_length(), 0);
  EXPECT_DOUBLE_EQ(idx.TotalCount(w), 0.0);
}

}  // namespace
}  // namespace stburst
