// Tests for stream/frequency: TermSeries and FrequencyIndex.

#include "stburst/stream/frequency.h"

#include <gtest/gtest.h>

namespace stburst {
namespace {

TEST(TermSeries, ZeroInitializedAndAddressable) {
  TermSeries s(3, 4);
  EXPECT_EQ(s.num_streams(), 3u);
  EXPECT_EQ(s.timeline_length(), 4);
  for (StreamId i = 0; i < 3; ++i) {
    for (Timestamp t = 0; t < 4; ++t) EXPECT_DOUBLE_EQ(s.at(i, t), 0.0);
  }
  s.set(1, 2, 5.0);
  s.add(1, 2, 1.5);
  EXPECT_DOUBLE_EQ(s.at(1, 2), 6.5);
  EXPECT_DOUBLE_EQ(s.Total(), 6.5);
}

TEST(TermSeries, RowColumnAndAggregateViews) {
  TermSeries s(2, 3);
  s.set(0, 0, 1);
  s.set(0, 1, 2);
  s.set(0, 2, 3);
  s.set(1, 0, 10);
  s.set(1, 2, 30);
  std::span<const double> row = s.StreamRow(0);
  EXPECT_EQ(std::vector<double>(row.begin(), row.end()),
            (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(s.SnapshotColumn(0), (std::vector<double>{1, 10}));
  EXPECT_EQ(s.SnapshotColumn(1), (std::vector<double>{2, 0}));
  EXPECT_EQ(s.AggregateOverStreams(), (std::vector<double>{11, 2, 33}));
}

Collection MakeCollection() {
  auto c = Collection::Create(4);
  StreamId s0 = c->AddStream("A", {}, {});
  StreamId s1 = c->AddStream("B", {}, {});
  Vocabulary* v = c->mutable_vocabulary();
  TermId cat = v->Intern("cat");
  TermId dog = v->Intern("dog");
  // doc with "cat cat dog" on (s0, t1); "cat" on (s0, t1) again; "dog" on (s1, t3)
  (void)c->AddDocument(s0, 1, {cat, cat, dog});
  (void)c->AddDocument(s0, 1, {cat});
  (void)c->AddDocument(s1, 3, {dog});
  return std::move(*c);
}

TEST(FrequencyIndex, MergesPostingsAcrossDocuments) {
  Collection c = MakeCollection();
  FrequencyIndex idx = FrequencyIndex::Build(c);
  EXPECT_EQ(idx.num_streams(), 2u);
  EXPECT_EQ(idx.timeline_length(), 4);
  TermId cat = c.vocabulary().Lookup("cat");
  TermId dog = c.vocabulary().Lookup("dog");

  const auto& cat_postings = idx.postings(cat);
  ASSERT_EQ(cat_postings.size(), 1u);  // both docs at (s0, t1) merged
  EXPECT_EQ(cat_postings[0].stream, 0u);
  EXPECT_EQ(cat_postings[0].time, 1);
  EXPECT_DOUBLE_EQ(cat_postings[0].count, 3.0);

  const auto& dog_postings = idx.postings(dog);
  ASSERT_EQ(dog_postings.size(), 2u);
  EXPECT_DOUBLE_EQ(idx.TotalCount(dog), 2.0);
}

TEST(FrequencyIndex, DenseSeriesMatchesPostings) {
  Collection c = MakeCollection();
  FrequencyIndex idx = FrequencyIndex::Build(c);
  TermId cat = c.vocabulary().Lookup("cat");
  TermSeries series = idx.DenseSeries(cat);
  EXPECT_DOUBLE_EQ(series.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(series.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(series.at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(series.Total(), idx.TotalCount(cat));
}

TEST(FrequencyIndex, UnknownTermIsEmpty) {
  Collection c = MakeCollection();
  FrequencyIndex idx = FrequencyIndex::Build(c);
  EXPECT_TRUE(idx.postings(9999).empty());
  EXPECT_DOUBLE_EQ(idx.TotalCount(9999), 0.0);
}

TEST(FrequencyIndex, PostingsSortedByStreamThenTime) {
  auto c = Collection::Create(5);
  StreamId s0 = c->AddStream("A", {}, {});
  StreamId s1 = c->AddStream("B", {}, {});
  TermId t = c->mutable_vocabulary()->Intern("x");
  (void)c->AddDocument(s1, 4, {t});
  (void)c->AddDocument(s0, 2, {t});
  (void)c->AddDocument(s1, 0, {t});
  (void)c->AddDocument(s0, 0, {t});
  FrequencyIndex idx = FrequencyIndex::Build(*c);
  const auto& p = idx.postings(t);
  ASSERT_EQ(p.size(), 4u);
  for (size_t i = 1; i < p.size(); ++i) {
    bool ordered = p[i - 1].stream < p[i].stream ||
                   (p[i - 1].stream == p[i].stream && p[i - 1].time < p[i].time);
    EXPECT_TRUE(ordered);
  }
}

}  // namespace
}  // namespace stburst
