// Tests for classical MDS (geo/mds).

#include "stburst/geo/mds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stburst/common/random.h"
#include "stburst/geo/haversine.h"

namespace stburst {
namespace {

std::vector<double> EuclideanMatrix(const std::vector<Point2D>& pts) {
  size_t n = pts.size();
  std::vector<double> d(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      d[i * n + j] = EuclideanDistance(pts[i], pts[j]);
    }
  }
  return d;
}

TEST(ClassicalMds, RejectsBadInput) {
  EXPECT_TRUE(ClassicalMds({}, 0).status().IsInvalidArgument());
  EXPECT_TRUE(ClassicalMds({0.0, 1.0}, 2).status().IsInvalidArgument());
  // Nonzero diagonal.
  EXPECT_TRUE(
      ClassicalMds({1.0, 2.0, 2.0, 0.0}, 2).status().IsInvalidArgument());
  // Negative distance.
  EXPECT_TRUE(
      ClassicalMds({0.0, -1.0, -1.0, 0.0}, 2).status().IsInvalidArgument());
}

TEST(ClassicalMds, SinglePointAtOrigin) {
  auto result = ClassicalMds({0.0}, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(ClassicalMds, RecoversPlanarConfigurationExactly) {
  // Points already in the plane: MDS must reproduce all pairwise distances.
  Rng rng(3);
  std::vector<Point2D> pts(12);
  for (auto& p : pts) {
    p.x = rng.Uniform(-10, 10);
    p.y = rng.Uniform(-10, 10);
  }
  auto d = EuclideanMatrix(pts);
  auto result = ClassicalMds(d, pts.size());
  ASSERT_TRUE(result.ok());
  const auto& emb = *result;
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = 0; j < pts.size(); ++j) {
      EXPECT_NEAR(EuclideanDistance(emb[i], emb[j]),
                  d[i * pts.size() + j], 1e-6);
    }
  }
  EXPECT_LT(MdsStress(d, emb), 1e-8);
}

TEST(ClassicalMds, EquilateralTriangle) {
  // All pairwise distances 1.
  std::vector<double> d = {0, 1, 1, 1, 0, 1, 1, 1, 0};
  auto result = ClassicalMds(d, 3);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = i + 1; j < 3; ++j) {
      EXPECT_NEAR(EuclideanDistance((*result)[i], (*result)[j]), 1.0, 1e-9);
    }
  }
}

TEST(ProjectGeoPoints, EuropeanCapitalsLowStress) {
  // Spherical distances are nearly planar at continental scale, so a 2-D
  // embedding must fit well.
  std::vector<GeoPoint> capitals = {
      {51.51, -0.13},  // London
      {48.86, 2.35},   // Paris
      {52.52, 13.41},  // Berlin
      {40.42, -3.70},  // Madrid
      {41.90, 12.50},  // Rome
      {59.33, 18.07},  // Stockholm
      {37.98, 23.73},  // Athens
      {52.23, 21.01},  // Warsaw
  };
  auto result = ProjectGeoPoints(capitals);
  ASSERT_TRUE(result.ok());
  auto distances = PairwiseDistanceMatrixKm(capitals);
  EXPECT_LT(MdsStress(distances, *result), 0.02);

  // Relative geometry sanity: London-Paris much closer than London-Athens.
  double lp = EuclideanDistance((*result)[0], (*result)[1]);
  double la = EuclideanDistance((*result)[0], (*result)[6]);
  EXPECT_LT(lp, la);
}

TEST(ProjectGeoPoints, GlobalConfigurationPreservesNeighborhoods) {
  std::vector<GeoPoint> pts = {
      {38.91, -77.04},   // Washington
      {45.42, -75.70},   // Ottawa (close to Washington)
      {35.68, 139.69},   // Tokyo
      {37.57, 126.98},   // Seoul (close to Tokyo)
      {-35.28, 149.13},  // Canberra
      {-41.29, 174.78},  // Wellington (close to Canberra)
  };
  auto result = ProjectGeoPoints(pts);
  ASSERT_TRUE(result.ok());
  const auto& e = *result;
  // Each pair of neighbors is embedded closer than any cross-pair.
  double wash_ottawa = EuclideanDistance(e[0], e[1]);
  double tokyo_seoul = EuclideanDistance(e[2], e[3]);
  double wash_tokyo = EuclideanDistance(e[0], e[2]);
  EXPECT_LT(wash_ottawa, wash_tokyo);
  EXPECT_LT(tokyo_seoul, wash_tokyo);
}

TEST(MdsStress, ZeroForPerfectEmbedding) {
  std::vector<Point2D> pts = {{0, 0}, {3, 0}, {0, 4}};
  EXPECT_NEAR(MdsStress(EuclideanMatrix(pts), pts), 0.0, 1e-12);
}

}  // namespace
}  // namespace stburst
