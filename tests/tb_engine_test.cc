// Tests for the TB temporal-only baseline (index/tb_engine).

#include "stburst/index/tb_engine.h"

#include <gtest/gtest.h>

#include "stburst/index/search_engine.h"

namespace stburst {
namespace {

// 3 streams, 30 weeks; the term bursts on weeks [10, 13] in streams 0 and 1
// simultaneously — TB merges everything, so the pattern covers all streams.
Collection MakeCorpus() {
  auto c = Collection::Create(30);
  StreamId s0 = c->AddStream("A", {}, {});
  StreamId s1 = c->AddStream("B", {}, {});
  c->AddStream("C", {}, {});
  TermId t = c->mutable_vocabulary()->Intern("gaza");
  TermId filler = c->mutable_vocabulary()->Intern("filler");
  // Background: one mention somewhere every week.
  for (Timestamp w = 0; w < 30; ++w) {
    (void)c->AddDocument(w % 2 == 0 ? s0 : s1, w, {t, filler});
  }
  // Burst: many mentions during [10, 13].
  for (Timestamp w = 10; w <= 13; ++w) {
    for (int i = 0; i < 6; ++i) {
      (void)c->AddDocument(i % 2 == 0 ? s0 : s1, w, {t, t, filler});
    }
  }
  return std::move(*c);
}

TEST(BuildTbPatternIndex, PatternsCoverAllStreams) {
  Collection c = MakeCorpus();
  FrequencyIndex freq = FrequencyIndex::Build(c);
  TermId t = c.vocabulary().Lookup("gaza");
  PatternIndex tb = BuildTbPatternIndex(freq, {t});
  const auto& patterns = tb.PatternsFor(t);
  ASSERT_GE(patterns.size(), 1u);
  for (const auto& p : patterns) {
    EXPECT_EQ(p.streams.size(), c.num_streams());  // blind to origins
  }
}

TEST(BuildTbPatternIndex, TopPatternCoversTheBurst) {
  Collection c = MakeCorpus();
  FrequencyIndex freq = FrequencyIndex::Build(c);
  TermId t = c.vocabulary().Lookup("gaza");
  PatternIndex tb = BuildTbPatternIndex(freq, {t});
  const TermPattern* best = nullptr;
  for (const auto& p : tb.PatternsFor(t)) {
    if (best == nullptr || p.score > best->score) best = &p;
  }
  ASSERT_NE(best, nullptr);
  EXPECT_LE(best->timeframe.start, 10);
  EXPECT_GE(best->timeframe.end, 13);
}

TEST(BuildTbPatternIndex, AllTermsWhenUnspecified) {
  Collection c = MakeCorpus();
  FrequencyIndex freq = FrequencyIndex::Build(c);
  PatternIndex tb = BuildTbPatternIndex(freq);
  TermId t = c.vocabulary().Lookup("gaza");
  EXPECT_GE(tb.PatternsFor(t).size(), 1u);
}

TEST(BuildTbPatternIndex, SearchOverTbPatterns) {
  Collection c = MakeCorpus();
  FrequencyIndex freq = FrequencyIndex::Build(c);
  PatternIndex tb = BuildTbPatternIndex(freq);
  auto engine = BurstySearchEngine::Build(c, tb);
  auto result = engine.Search("gaza", 5);
  ASSERT_GE(result.docs.size(), 1u);
  // All top docs come from the burst weeks (highest burstiness x relevance).
  for (const auto& d : result.docs) {
    Timestamp w = c.document(d.doc).time;
    EXPECT_GE(w, 10);
    EXPECT_LE(w, 13);
  }
}

TEST(BuildTbPatternIndex, TermWithNoMassYieldsNoPatterns) {
  Collection c = MakeCorpus();
  FrequencyIndex freq = FrequencyIndex::Build(c);
  PatternIndex tb = BuildTbPatternIndex(freq, {9999});
  EXPECT_TRUE(tb.PatternsFor(9999).empty());
}

}  // namespace
}  // namespace stburst
