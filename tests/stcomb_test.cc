// Tests for STComb (core/stcomb).

#include "stburst/core/stcomb.h"

#include <gtest/gtest.h>

#include "stburst/common/random.h"

namespace stburst {
namespace {

StreamInterval SI(StreamId s, Timestamp a, Timestamp b, double w) {
  return StreamInterval{s, Interval{a, b}, w};
}

TEST(StComb, MineFromIntervalsSingleClique) {
  StComb miner;
  auto patterns = miner.MineFromIntervals({
      SI(0, 2, 9, 0.8),
      SI(1, 4, 10, 0.4),
      SI(2, 3, 8, 0.3),
      SI(3, 5, 9, 0.6),
  });
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_NEAR(patterns[0].score, 2.1, 1e-12);
  EXPECT_EQ(patterns[0].streams, (std::vector<StreamId>{0, 1, 2, 3}));
  // Common segment of [2,9],[4,10],[3,8],[5,9] is [5,8].
  EXPECT_EQ(patterns[0].timeframe, (Interval{5, 8}));
}

TEST(StComb, IteratedCliquesAreStreamDisjointPerRound) {
  // Two well-separated groups of overlapping intervals.
  StComb miner;
  auto patterns = miner.MineFromIntervals({
      SI(0, 0, 5, 1.0),
      SI(1, 2, 6, 1.0),
      SI(2, 20, 25, 0.7),
      SI(3, 22, 28, 0.7),
  });
  ASSERT_EQ(patterns.size(), 2u);
  EXPECT_NEAR(patterns[0].score, 2.0, 1e-12);
  EXPECT_EQ(patterns[0].streams, (std::vector<StreamId>{0, 1}));
  EXPECT_NEAR(patterns[1].score, 1.4, 1e-12);
  EXPECT_EQ(patterns[1].streams, (std::vector<StreamId>{2, 3}));
}

TEST(StComb, MaxPatternsCap) {
  StCombOptions opts;
  opts.max_patterns = 1;
  StComb miner(opts);
  auto patterns = miner.MineFromIntervals({
      SI(0, 0, 5, 1.0),
      SI(1, 20, 25, 0.7),
  });
  EXPECT_EQ(patterns.size(), 1u);
}

TEST(StComb, MinStreamsFiltersSingletons) {
  StCombOptions opts;
  opts.min_streams = 2;
  StComb miner(opts);
  auto patterns = miner.MineFromIntervals({
      SI(0, 0, 5, 1.0),
      SI(1, 3, 8, 0.5),
      SI(2, 20, 22, 2.0),  // lone burst, filtered
  });
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].streams.size(), 2u);
}

TEST(StComb, EmptyInput) {
  StComb miner;
  EXPECT_TRUE(miner.MineFromIntervals({}).empty());
}

TermSeries MakeSeriesWithJointBurst() {
  // 6 streams, 60 timestamps; streams 1, 2, 3 burst jointly on [20, 29].
  TermSeries series(6, 60);
  Rng rng(5);
  for (StreamId s = 0; s < 6; ++s) {
    for (Timestamp t = 0; t < 60; ++t) {
      series.set(s, t, 0.8 + 0.4 * rng.NextDouble());
    }
  }
  for (StreamId s = 1; s <= 3; ++s) {
    for (Timestamp t = 20; t < 30; ++t) series.add(s, t, 15.0);
  }
  return series;
}

TEST(StComb, ExtractStreamIntervalsFindsBurstyStreams) {
  TermSeries series = MakeSeriesWithJointBurst();
  StCombOptions opts;
  opts.min_interval_burstiness = 0.2;
  StComb miner(opts);
  auto intervals = miner.ExtractStreamIntervals(series);
  ASSERT_EQ(intervals.size(), 3u);
  for (const auto& si : intervals) {
    EXPECT_GE(si.stream, 1u);
    EXPECT_LE(si.stream, 3u);
    EXPECT_GT(si.burstiness, 0.2);
    // The detected interval must cover the bulk of the planted burst.
    EXPECT_LE(si.interval.start, 22);
    EXPECT_GE(si.interval.end, 27);
  }
}

TEST(StComb, MinePatternsEndToEnd) {
  TermSeries series = MakeSeriesWithJointBurst();
  StCombOptions opts;
  opts.min_interval_burstiness = 0.2;
  StComb miner(opts);
  auto patterns = miner.MinePatterns(series);
  ASSERT_GE(patterns.size(), 1u);
  const auto& top = patterns[0];
  EXPECT_EQ(top.streams, (std::vector<StreamId>{1, 2, 3}));
  EXPECT_TRUE(top.timeframe.Intersects(Interval{20, 29}));
  // Patterns are sorted by descending score.
  for (size_t i = 1; i < patterns.size(); ++i) {
    EXPECT_GE(patterns[i - 1].score, patterns[i].score);
  }
}

TEST(StComb, PatternsScoreEqualsMemberSum) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<StreamInterval> intervals;
    size_t streams = 2 + rng.NextUint64(6);
    for (StreamId s = 0; s < streams; ++s) {
      // A few non-overlapping intervals per stream.
      Timestamp t = 0;
      while (t < 80) {
        Timestamp a = t + static_cast<Timestamp>(rng.NextUint64(10));
        Timestamp b = a + static_cast<Timestamp>(rng.NextUint64(12));
        if (b >= 100) break;
        intervals.push_back(SI(s, a, b, rng.Uniform(0.05, 1.0)));
        t = b + 2;
      }
    }
    StComb miner;
    auto patterns = miner.MineFromIntervals(intervals);
    double total_pattern_score = 0.0;
    for (const auto& p : patterns) {
      total_pattern_score += p.score;
      EXPECT_TRUE(p.timeframe.valid());
      // Streams unique within a pattern.
      for (size_t i = 1; i < p.streams.size(); ++i) {
        EXPECT_LT(p.streams[i - 1], p.streams[i]);
      }
    }
    // Every interval is consumed at most once across rounds.
    double total_interval_score = 0.0;
    for (const auto& si : intervals) total_interval_score += si.burstiness;
    EXPECT_LE(total_pattern_score, total_interval_score + 1e-9);
  }
}

}  // namespace
}  // namespace stburst
