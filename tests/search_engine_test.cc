// Tests for the bursty-document search engine (index/search_engine).

#include "stburst/index/search_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "index_test_util.h"
#include "stburst/common/random.h"

namespace stburst {
namespace {

// A 2-stream, 10-timestamp corpus with a known pattern on (stream 0,
// weeks [2, 5]).
struct Fixture {
  Collection collection;
  PatternIndex patterns;
  TermId quake;
  DocId in_pattern_strong;   // 3 mentions inside the pattern
  DocId in_pattern_weak;     // 1 mention inside the pattern
  DocId out_of_time;         // mention outside the timeframe
  DocId out_of_space;        // mention on the other stream

  static Fixture Make() {
    auto c = Collection::Create(10);
    StreamId s0 = c->AddStream("A", {}, Point2D{0, 0});
    StreamId s1 = c->AddStream("B", {}, Point2D{9, 9});
    Vocabulary* v = c->mutable_vocabulary();
    TermId quake = v->Intern("earthquake");
    TermId filler = v->Intern("filler");

    DocId strong = *c->AddDocument(s0, 3, {quake, quake, quake, filler});
    DocId weak = *c->AddDocument(s0, 4, {quake, filler});
    DocId late = *c->AddDocument(s0, 8, {quake, quake, quake});
    DocId elsewhere = *c->AddDocument(s1, 3, {quake, quake, quake});

    PatternIndex p;
    p.Add(quake, TermPattern{{s0}, Interval{2, 5}, 2.0});
    return Fixture{std::move(*c), std::move(p), quake,
                   strong, weak, late, elsewhere};
  }
};

TEST(BurstySearchEngine, RanksByRelevanceTimesBurstiness) {
  Fixture f = Fixture::Make();
  auto engine = BurstySearchEngine::Build(f.collection, f.patterns);
  auto result = engine.Search("earthquake", 10);
  ASSERT_EQ(result.docs.size(), 2u);  // only pattern-overlapping docs
  EXPECT_EQ(result.docs[0].doc, f.in_pattern_strong);
  EXPECT_EQ(result.docs[1].doc, f.in_pattern_weak);
  EXPECT_NEAR(result.docs[0].score, std::log(4.0) * 2.0, 1e-9);
  EXPECT_NEAR(result.docs[1].score, std::log(2.0) * 2.0, 1e-9);
}

TEST(BurstySearchEngine, DocsOutsidePatternsAreExcluded) {
  Fixture f = Fixture::Make();
  auto engine = BurstySearchEngine::Build(f.collection, f.patterns);
  auto result = engine.Search("earthquake", 10);
  for (const auto& d : result.docs) {
    EXPECT_NE(d.doc, f.out_of_time);
    EXPECT_NE(d.doc, f.out_of_space);
  }
}

TEST(BurstySearchEngine, UnknownQueryTermYieldsNothing) {
  Fixture f = Fixture::Make();
  auto engine = BurstySearchEngine::Build(f.collection, f.patterns);
  EXPECT_TRUE(engine.Search("nonexistent", 5).docs.empty());
  EXPECT_TRUE(engine.Search("", 5).docs.empty());
}

TEST(BurstySearchEngine, MultiTermQuerySumsContributions) {
  auto c = Collection::Create(10);
  StreamId s0 = c->AddStream("A", {}, {});
  Vocabulary* v = c->mutable_vocabulary();
  TermId air = v->Intern("air");
  TermId france = v->Intern("france");
  DocId both = *c->AddDocument(s0, 1, {air, france});
  DocId only_air = *c->AddDocument(s0, 1, {air});

  PatternIndex p;
  p.Add(air, TermPattern{{s0}, Interval{0, 5}, 1.0});
  p.Add(france, TermPattern{{s0}, Interval{0, 5}, 1.0});

  auto engine = BurstySearchEngine::Build(*c, p);
  auto result = engine.Search("air france", 10);
  ASSERT_EQ(result.docs.size(), 2u);
  EXPECT_EQ(result.docs[0].doc, both);
  EXPECT_EQ(result.docs[1].doc, only_air);
  EXPECT_NEAR(result.docs[0].score, 2.0 * std::log(2.0), 1e-9);
}

TEST(BurstySearchEngine, ThresholdAndExhaustiveAgree) {
  Fixture f = Fixture::Make();
  SearchEngineOptions ta;
  ta.use_threshold_algorithm = true;
  SearchEngineOptions ex;
  ex.use_threshold_algorithm = false;
  auto engine_ta = BurstySearchEngine::Build(f.collection, f.patterns, ta);
  auto engine_ex = BurstySearchEngine::Build(f.collection, f.patterns, ex);
  auto r1 = engine_ta.Search("earthquake", 5);
  auto r2 = engine_ex.Search("earthquake", 5);
  ASSERT_EQ(r1.docs.size(), r2.docs.size());
  for (size_t i = 0; i < r1.docs.size(); ++i) {
    EXPECT_EQ(r1.docs[i].doc, r2.docs[i].doc);
  }
}

TEST(IndexTermDocuments, TermMajorRefreshMatchesDocMajorBuild) {
  // The incremental path FeedRuntime's search serving takes — per-term
  // re-derivation through the frequency index — must produce postings
  // identical to the doc-major BurstySearchEngine::Build from the same
  // pattern state, on a randomized corpus.
  Rng rng(17);
  auto c = Collection::Create(12);
  const size_t n = 3, vocab = 10;
  for (size_t s = 0; s < n; ++s) {
    c->AddStream("s", {}, Point2D{static_cast<double>(s), 0.0});
  }
  Vocabulary* v = c->mutable_vocabulary();
  for (size_t t = 0; t < vocab; ++t) v->Intern("t" + std::to_string(t));
  for (Timestamp t = 0; t < 12; ++t) {
    for (StreamId s = 0; s < n; ++s) {
      const size_t docs = rng.NextUint64(3);
      for (size_t d = 0; d < docs; ++d) {
        std::vector<TermId> tokens;
        const size_t len = 1 + rng.NextUint64(5);
        for (size_t i = 0; i < len; ++i) {
          tokens.push_back(static_cast<TermId>(rng.NextUint64(vocab)));
        }
        ASSERT_TRUE(c->AddDocument(s, t, std::move(tokens)).ok());
      }
    }
  }
  PatternIndex patterns;
  for (TermId t = 0; t < vocab; ++t) {
    const size_t count = rng.NextUint64(3);
    for (size_t i = 0; i < count; ++i) {
      const Timestamp start = static_cast<Timestamp>(rng.NextUint64(10));
      std::vector<StreamId> streams;
      for (StreamId s = 0; s < n; ++s) {
        if (rng.Bernoulli(0.6)) streams.push_back(s);
      }
      if (streams.empty()) streams.push_back(0);
      patterns.Add(t, TermPattern{std::move(streams),
                                  Interval{start, start + 3},
                                  rng.Uniform(0.5, 3.0)});
    }
  }

  auto engine = BurstySearchEngine::Build(*c, patterns);
  FrequencyIndex freq = FrequencyIndex::Build(*c);
  InvertedIndex term_major;
  for (TermId t = 0; t < vocab; ++t) {
    IndexTermDocuments(*c, freq, t, patterns.PatternsFor(t), &term_major);
  }
  term_major.Finalize();
  ExpectIdenticalIndexes(term_major, engine.index());
}

TEST(Relevance, LogOfFrequencyPlusOne) {
  EXPECT_DOUBLE_EQ(Relevance(0.0), 0.0);
  EXPECT_NEAR(Relevance(1.0), std::log(2.0), 1e-12);
  EXPECT_GT(Relevance(10.0), Relevance(5.0));
}

}  // namespace
}  // namespace stburst
