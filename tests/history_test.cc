// Tiered long-horizon history proofs (docs/ARCHITECTURE.md "Tiered
// history", docs/STORAGE.md):
//
//  - fold-vs-direct parity: the tier's aggregates are bit-equal to
//    aggregating the dropped snapshots directly (via an unwindowed control);
//  - full-horizon baseline parity: a windowed runtime + LongHorizonBaseline
//    reproduces the unwindowed control's expected-model baselines exactly;
//  - restart recovery: a tier written through kMmap reopens bit-identical,
//    and a restarted runtime recovers the baselines without replaying the
//    cold span;
//  - storage hardening: truncated / corrupt / wrong-format files are
//    rejected, never half-read;
//  - ReplayRange backtesting over stored spans.
//
// Bit-equality leans on the frequency determinism note in frequency.h:
// counts are integer-valued doubles (token multiplicities), so partial sums
// are exact regardless of association order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "stburst/common/random.h"
#include "stburst/core/expected.h"
#include "stburst/history/cold_tier.h"
#include "stburst/history/long_horizon.h"
#include "stburst/history/replay.h"
#include "stburst/stream/feed_runtime.h"

namespace stburst {
namespace {

constexpr size_t kStreams = 4;
constexpr size_t kVocab = 24;
constexpr Timestamp kWindow = 5;
constexpr Timestamp kBucket = 2;
constexpr int kTicks = 14;

Collection MakeSeedCollection(Timestamp initial_timeline = 2) {
  auto c = Collection::Create(initial_timeline);
  EXPECT_TRUE(c.ok());
  for (size_t s = 0; s < kStreams; ++s) {
    c->AddStream("s" + std::to_string(s), {},
                 Point2D{static_cast<double>(s % 2),
                         static_cast<double>(s / 2)});
  }
  Vocabulary* v = c->mutable_vocabulary();
  for (size_t t = 0; t < kVocab; ++t) v->Intern("term" + std::to_string(t));
  return std::move(*c);
}

Snapshot MakeSnapshot(Rng& rng) {
  Snapshot snap;
  for (StreamId s = 0; s < kStreams; ++s) {
    const size_t docs = 1 + rng.NextUint64(2);
    for (size_t d = 0; d < docs; ++d) {
      SnapshotDocument doc;
      doc.stream = s;
      const size_t len = 2 + rng.NextUint64(4);
      for (size_t i = 0; i < len; ++i) {
        TermId tok = static_cast<TermId>(rng.NextUint64(kVocab));
        if (rng.Bernoulli(0.5)) {
          tok = static_cast<TermId>(tok % (kVocab / 4 + 1));
        }
        doc.tokens.push_back(tok);
      }
      snap.push_back(std::move(doc));
    }
  }
  return snap;
}

std::vector<Snapshot> MakeFeed(uint64_t seed, int ticks) {
  Rng rng(seed);
  std::vector<Snapshot> feed;
  feed.reserve(static_cast<size_t>(ticks));
  for (int i = 0; i < ticks; ++i) feed.push_back(MakeSnapshot(rng));
  return feed;
}

FeedRuntimeOptions WindowedHistoryOptions(HistoryMode mode) {
  FeedRuntimeOptions opts;
  opts.num_threads = 2;
  opts.retention_window = kWindow;
  opts.history_mode = mode;
  opts.history_bucket_width = kBucket;
  return opts;
}

void ExpectSameRows(const std::vector<ColdRow>& got,
                    const std::vector<ColdRow>& want, TermId term) {
  ASSERT_EQ(got.size(), want.size()) << "term " << term;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].stream, want[i].stream) << "term " << term;
    EXPECT_EQ(got[i].bucket, want[i].bucket) << "term " << term;
    EXPECT_EQ(got[i].sum, want[i].sum) << "term " << term << " (bit-equal)";
    EXPECT_EQ(got[i].max, want[i].max) << "term " << term << " (bit-equal)";
    EXPECT_EQ(got[i].count, want[i].count) << "term " << term;
  }
}

// Aggregates `postings` over [covered_start, folded_until) exactly as the
// tier contract specifies — the "direct" half of fold-vs-direct parity.
std::vector<ColdRow> DirectAggregate(const std::vector<TermPosting>& postings,
                                     Timestamp covered_start,
                                     Timestamp folded_until,
                                     Timestamp bucket_width) {
  std::vector<ColdRow> rows;
  for (const TermPosting& p : postings) {
    if (p.time < covered_start || p.time >= folded_until) continue;
    if (p.count == 0.0) continue;
    const auto bucket = static_cast<uint32_t>(p.time / bucket_width);
    auto it = rows.begin();
    while (it != rows.end() &&
           std::pair(it->stream, it->bucket) < std::pair(p.stream, bucket)) {
      ++it;
    }
    if (it == rows.end() || it->stream != p.stream || it->bucket != bucket) {
      it = rows.insert(it, ColdRow{p.stream, bucket, 0.0, 0.0, 0});
    }
    it->sum += p.count;
    it->max = std::max(it->max, p.count);
    it->count += 1;
  }
  return rows;
}

std::string TempPath(const std::string& name) {
  std::string dir = testing::TempDir();
  if (!dir.empty() && dir.back() != '/') dir += '/';
  const std::string path = dir + name;
  std::remove(path.c_str());
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------- ColdTier

TEST(ColdTierTest, FoldAggregatesRollsBackAndIsIdempotent) {
  auto tier = ColdTier::CreateInMemory(/*bucket_width=*/4);
  ASSERT_TRUE(tier.ok());

  std::vector<std::pair<TermId, std::vector<TermPosting>>> removed;
  removed.push_back({7,
                     {{0, 0, 2.0}, {0, 1, 3.0}, {0, 5, 1.0}, {2, 2, 4.0}}});
  removed.push_back({9, {{1, 3, 1.0}}});

  ColdFoldUndo undo;
  EXPECT_EQ(tier->FoldEvicted(removed, /*cutoff=*/6, &undo), 2u);
  EXPECT_EQ(tier->folded_until(), 6);
  EXPECT_EQ(tier->covered_start(), 0);
  EXPECT_EQ(tier->term_upper_bound(), 10u);
  EXPECT_EQ(tier->stream_upper_bound(), 3u);

  // Term 7: times 0,1,2 land in bucket 0; time 5 in bucket 1.
  ExpectSameRows(tier->TermRows(7),
                 {{0, 0, 5.0, 3.0, 2},
                  {0, 1, 1.0, 1.0, 1},
                  {2, 0, 4.0, 4.0, 1}},
                 7);
  ExpectSameRows(tier->TermRows(9), {{1, 0, 1.0, 1.0, 1}}, 9);
  EXPECT_EQ(tier->StreamSum(7, 0), 6.0);
  EXPECT_EQ(tier->TermSum(7), 10.0);

  // Idempotence: re-folding the same postings (all below folded_until now)
  // changes nothing.
  ColdFoldUndo undo2;
  EXPECT_EQ(tier->FoldEvicted(removed, /*cutoff=*/6, &undo2), 0u);
  ExpectSameRows(tier->TermRows(7),
                 {{0, 0, 5.0, 3.0, 2},
                  {0, 1, 1.0, 1.0, 1},
                  {2, 0, 4.0, 4.0, 1}},
                 7);

  // A second fold above the watermark merges into existing buckets...
  std::vector<std::pair<TermId, std::vector<TermPosting>>> more;
  more.push_back({7, {{0, 6, 7.0}}});
  ColdFoldUndo undo3;
  EXPECT_EQ(tier->FoldEvicted(more, /*cutoff=*/8, &undo3), 1u);
  ExpectSameRows(tier->TermRows(7),
                 {{0, 0, 5.0, 3.0, 2},
                  {0, 1, 8.0, 7.0, 2},
                  {2, 0, 4.0, 4.0, 1}},
                 7);
  EXPECT_EQ(tier->folded_until(), 8);

  // ...and rolls back exactly (rows, watermark, bounds).
  tier->RollbackFold(std::move(undo3));
  EXPECT_EQ(tier->folded_until(), 6);
  ExpectSameRows(tier->TermRows(7),
                 {{0, 0, 5.0, 3.0, 2},
                  {0, 1, 1.0, 1.0, 1},
                  {2, 0, 4.0, 4.0, 1}},
                 7);
}

TEST(ColdTierTest, AttachAdoptsWindowStartAndRejectsGaps) {
  auto tier = ColdTier::CreateInMemory(4);
  ASSERT_TRUE(tier.ok());

  // Fresh tier: coverage honestly begins at the live window.
  ASSERT_TRUE(tier->AttachAt(9).ok());
  EXPECT_EQ(tier->covered_start(), 9);
  EXPECT_EQ(tier->folded_until(), 9);
  EXPECT_EQ(tier->covered_length(), 0);
  EXPECT_EQ(tier->bucket_lower_bound(), 2u);

  std::vector<std::pair<TermId, std::vector<TermPosting>>> removed;
  removed.push_back({1, {{0, 9, 1.0}, {0, 10, 2.0}}});
  ColdFoldUndo undo;
  EXPECT_EQ(tier->FoldEvicted(removed, /*cutoff=*/11, &undo), 1u);

  // Overlap is fine (restart replayed extra history)...
  EXPECT_TRUE(tier->AttachAt(10).ok());
  EXPECT_EQ(tier->folded_until(), 11);
  // ...a gap past the folded aggregates is not.
  const Status gap = tier->AttachAt(13);
  EXPECT_FALSE(gap.ok());
  EXPECT_TRUE(gap.IsInvalidArgument());
}

TEST(ColdTierTest, RuntimeValidatesHistoryOptions) {
  {
    FeedRuntimeOptions opts = WindowedHistoryOptions(HistoryMode::kInMemory);
    opts.history_bucket_width = 0;
    EXPECT_FALSE(FeedRuntime::Create(MakeSeedCollection(), opts).ok());
  }
  {
    FeedRuntimeOptions opts = WindowedHistoryOptions(HistoryMode::kMmap);
    opts.history_path.clear();
    EXPECT_FALSE(FeedRuntime::Create(MakeSeedCollection(), opts).ok());
  }
}

// ------------------------------------------------- fold-vs-direct parity

// The windowed runtime's tier must hold exactly what direct aggregation of
// the dropped snapshots produces — proven against an unwindowed control
// that still has every posting.
TEST(HistoryFoldParityTest, TierMatchesDirectAggregationOfDroppedSnapshots) {
  auto subject = FeedRuntime::Create(
      MakeSeedCollection(), WindowedHistoryOptions(HistoryMode::kInMemory));
  ASSERT_TRUE(subject.ok()) << subject.status().ToString();
  FeedRuntimeOptions control_opts;
  control_opts.num_threads = 2;  // unwindowed, no history
  auto control = FeedRuntime::Create(MakeSeedCollection(), control_opts);
  ASSERT_TRUE(control.ok()) << control.status().ToString();

  size_t folding_ticks = 0;
  for (const Snapshot& snap : MakeFeed(/*seed=*/1234, kTicks)) {
    Snapshot copy = snap;
    auto stats = subject->Tick(std::move(copy));
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    if (stats->folded_terms > 0) ++folding_ticks;
    ASSERT_TRUE(control->Tick(Snapshot(snap)).ok());
  }
  ASSERT_GT(folding_ticks, 0u);

  const ColdTier* tier = subject->history();
  ASSERT_NE(tier, nullptr);
  // The seed collection fits inside the window, so nothing was dropped at
  // Create and the tier covers the full evicted prefix.
  EXPECT_EQ(tier->covered_start(), 0);
  EXPECT_EQ(tier->folded_until(), subject->window_start());
  ASSERT_GE(tier->folded_until(), 1);

  for (TermId t = 0; t < control->index().num_terms(); ++t) {
    ExpectSameRows(tier->TermRows(t),
                   DirectAggregate(control->index().postings(t),
                                   tier->covered_start(),
                                   tier->folded_until(), kBucket),
                   t);
  }
}

// The acceptance-criterion parity: expected-model baselines over the full
// horizon from hot window + cold tier, identical to the unwindowed control.
TEST(HistoryFoldParityTest, BaselinesMatchUnwindowedControl) {
  auto subject = FeedRuntime::Create(
      MakeSeedCollection(), WindowedHistoryOptions(HistoryMode::kInMemory));
  ASSERT_TRUE(subject.ok());
  FeedRuntimeOptions control_opts;
  control_opts.num_threads = 2;
  auto control = FeedRuntime::Create(MakeSeedCollection(), control_opts);
  ASSERT_TRUE(control.ok());

  for (const Snapshot& snap : MakeFeed(/*seed=*/555, kTicks)) {
    ASSERT_TRUE(subject->Tick(Snapshot(snap)).ok());
    ASSERT_TRUE(control->Tick(Snapshot(snap)).ok());
  }

  const ColdTier* tier = subject->history();
  ASSERT_NE(tier, nullptr);
  const Timestamp fold = tier->folded_until();
  ASSERT_EQ(fold, subject->window_start());
  ASSERT_GE(fold, 1);

  LongHorizonBaseline baseline(tier);
  for (TermId t = 0; t < control->index().num_terms(); ++t) {
    const TermSeries full = control->index().DenseSeries(t);
    const TermSeries hot = subject->index().DenseSeries(t);
    for (StreamId s = 0; s < kStreams; ++s) {
      // Control: an unseeded mean over the full horizon [0, T).
      SeededMeanModel control_model;
      const std::vector<double> want =
          BurstinessSeries(full.StreamRow(s), &control_model);
      // Subject: the tier-seeded mean over the hot window [fold, T) only.
      std::unique_ptr<ExpectedFrequencyModel> model = baseline.ModelFor(t, s);
      const std::vector<double> got =
          BurstinessSeries(hot.StreamRow(s), model.get());
      ASSERT_EQ(want.size(), got.size() + static_cast<size_t>(fold));
      for (size_t i = 0; i < got.size(); ++i) {
        // Bit-equal, not approximately equal: integer-valued partial sums
        // are exact in double.
        EXPECT_EQ(got[i], want[i + static_cast<size_t>(fold)])
            << "term " << t << " stream " << s << " hot index " << i;
      }
    }
  }
}

// --------------------------------------------------- LongHorizonBaseline

TEST(LongHorizonBaselineTest, SeededModelHonorsResetContract) {
  SeededMeanModel model(/*seed_sum=*/10.0, /*seed_count=*/5);
  EXPECT_TRUE(model.HasHistory());
  EXPECT_EQ(model.Expected(), 2.0);
  model.Observe(8.0);
  EXPECT_EQ(model.Expected(), 3.0);  // (10+8)/6
  // Reset restores the freshly-constructed (seeded) state, not zero.
  model.Reset();
  EXPECT_TRUE(model.HasHistory());
  EXPECT_EQ(model.Expected(), 2.0);
  model.Observe(8.0);
  EXPECT_EQ(model.Expected(), 3.0);

  SeededMeanModel unseeded;
  EXPECT_FALSE(unseeded.HasHistory());
  EXPECT_EQ(unseeded.Expected(), 0.0);
}

TEST(LongHorizonBaselineTest, NullTierYieldsUnseededModelsAndComposes) {
  LongHorizonBaseline baseline(nullptr);
  auto model = baseline.ModelFor(3, 1);
  EXPECT_FALSE(model->HasHistory());
  // Factories compose with the existing decorators.
  ExpectedModelFactory floored =
      WithPriorFloor(baseline.FactoryFor(3, 1), 0.25);
  auto m = floored();
  EXPECT_EQ(m->Expected(), 0.25);
}

// ------------------------------------------------------------ mmap tier

std::vector<std::pair<TermId, std::vector<TermPosting>>> SampleFoldInput() {
  return {{0, {{0, 0, 1.0}, {1, 2, 2.0}, {1, 3, 3.0}}},
          {3, {{2, 1, 4.0}, {2, 5, 1.0}}}};
}

TEST(ColdTierMmapTest, PublishReopenRoundTripWithDeltaOverlay) {
  const std::string path = TempPath("cold_tier_roundtrip.stb");
  {
    auto tier = ColdTier::OpenOrCreate(path, /*bucket_width=*/2);
    ASSERT_TRUE(tier.ok()) << tier.status().ToString();
    ColdFoldUndo undo;
    auto input = SampleFoldInput();
    tier->FoldEvicted(input, /*cutoff=*/4, &undo);
    ASSERT_TRUE(tier->Publish().ok());
    EXPECT_GT(tier->base_rows(), 0u);
    EXPECT_EQ(tier->delta_rows(), 0u);

    // Fold more on top of the published base: queries merge base + delta.
    std::vector<std::pair<TermId, std::vector<TermPosting>>> more = {
        {0, {{1, 4, 5.0}}}, {3, {{2, 5, 1.0}}}};
    ColdFoldUndo undo2;
    tier->FoldEvicted(more, /*cutoff=*/6, &undo2);
    ExpectSameRows(tier->TermRows(0),
                   {{0, 0, 1.0, 1.0, 1}, {1, 1, 5.0, 3.0, 2},
                    {1, 2, 5.0, 5.0, 1}},
                   0);
    ExpectSameRows(tier->TermRows(3),
                   {{2, 0, 4.0, 4.0, 1}, {2, 2, 1.0, 1.0, 1}}, 3);
    ASSERT_TRUE(tier->Publish().ok());
  }
  // Reopen from disk only: bit-identical state.
  auto reopened = ColdTier::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->bucket_width(), 2);
  EXPECT_EQ(reopened->covered_start(), 0);
  EXPECT_EQ(reopened->folded_until(), 6);
  ExpectSameRows(reopened->TermRows(0),
                 {{0, 0, 1.0, 1.0, 1}, {1, 1, 5.0, 3.0, 2},
                  {1, 2, 5.0, 5.0, 1}},
                 0);
  ExpectSameRows(reopened->TermRows(3),
                 {{2, 0, 4.0, 4.0, 1}, {2, 2, 1.0, 1.0, 1}}, 3);
  std::remove(path.c_str());
}

// The acceptance-criterion recovery proof: a restarted runtime attaches to
// the published tier and serves identical full-horizon baselines without
// replaying the cold span.
TEST(ColdTierMmapTest, RestartedRuntimeRecoversBaselinesWithoutReplay) {
  const std::string path = TempPath("cold_tier_restart.stb");
  const std::vector<Snapshot> feed = MakeFeed(/*seed=*/77, kTicks);

  Timestamp fold = 0;
  std::vector<std::vector<ColdRow>> rows_before(kVocab);
  std::vector<std::vector<double>> baseline_before;
  {
    FeedRuntimeOptions opts = WindowedHistoryOptions(HistoryMode::kMmap);
    opts.history_path = path;
    auto runtime = FeedRuntime::Create(MakeSeedCollection(), opts);
    ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
    for (const Snapshot& snap : feed) {
      ASSERT_TRUE(runtime->Tick(Snapshot(snap)).ok());
    }
    const ColdTier* tier = runtime->history();
    ASSERT_NE(tier, nullptr);
    fold = tier->folded_until();
    ASSERT_EQ(fold, runtime->window_start());
    LongHorizonBaseline baseline(tier);
    for (TermId t = 0; t < kVocab; ++t) {
      rows_before[t] = tier->TermRows(t);
      const TermSeries hot = runtime->index().DenseSeries(t);
      for (StreamId s = 0; s < kStreams; ++s) {
        auto model = baseline.ModelFor(t, s);
        baseline_before.push_back(
            BurstinessSeries(hot.StreamRow(s), model.get()));
      }
    }
  }  // runtime destroyed; only the published file remains

  // Standalone reopen (backtesting shape): bit-identical aggregates.
  {
    auto reopened = ColdTier::Open(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened->folded_until(), fold);
    for (TermId t = 0; t < kVocab; ++t) {
      ExpectSameRows(reopened->TermRows(t), rows_before[t], t);
    }
  }

  // Restarted runtime: a fresh collection holding ONLY the hot window (the
  // cold span is never replayed — its timestamps stay empty), attached to
  // the same tier file.
  Collection hot_only = MakeSeedCollection(/*initial_timeline=*/fold);
  for (size_t i = feed.size() - static_cast<size_t>(kWindow);
       i < feed.size(); ++i) {
    ASSERT_TRUE(hot_only.Append(Snapshot(feed[i])).ok());
  }
  FeedRuntimeOptions opts = WindowedHistoryOptions(HistoryMode::kMmap);
  opts.history_path = path;
  auto restarted = FeedRuntime::Create(std::move(hot_only), opts);
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  const ColdTier* tier = restarted->history();
  ASSERT_NE(tier, nullptr);
  EXPECT_EQ(tier->folded_until(), fold);
  EXPECT_EQ(restarted->window_start(), fold);

  LongHorizonBaseline baseline(tier);
  size_t pair_index = 0;
  for (TermId t = 0; t < kVocab; ++t) {
    ExpectSameRows(tier->TermRows(t), rows_before[t], t);
    const TermSeries hot = restarted->index().DenseSeries(t);
    for (StreamId s = 0; s < kStreams; ++s, ++pair_index) {
      auto model = baseline.ModelFor(t, s);
      EXPECT_EQ(BurstinessSeries(hot.StreamRow(s), model.get()),
                baseline_before[pair_index])
          << "term " << t << " stream " << s;
    }
  }

  // The recovered runtime keeps folding where the old one stopped.
  Rng rng(4321);
  auto stats = restarted->Tick(MakeSnapshot(rng));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->folded_terms, 0u);
  EXPECT_EQ(restarted->history()->folded_until(), fold + 1);
  std::remove(path.c_str());
}

TEST(ColdTierMmapTest, RejectsTruncatedAndCorruptFiles) {
  const std::string path = TempPath("cold_tier_corrupt_src.stb");
  {
    auto tier = ColdTier::OpenOrCreate(path, /*bucket_width=*/2);
    ASSERT_TRUE(tier.ok());
    ColdFoldUndo undo;
    auto input = SampleFoldInput();
    tier->FoldEvicted(input, /*cutoff=*/6, &undo);
    ASSERT_TRUE(tier->Publish().ok());
  }
  const std::string good = ReadFile(path);
  ASSERT_GT(good.size(), 64u);
  const std::string victim = TempPath("cold_tier_corrupt.stb");

  auto expect_rejected = [&](std::string bytes, const char* what) {
    WriteFile(victim, bytes);
    auto opened = ColdTier::Open(victim);
    EXPECT_FALSE(opened.ok()) << what;
    // OpenOrCreate must refuse too — never silently restart an empty tier
    // over a damaged file.
    auto reattached = ColdTier::OpenOrCreate(victim, 2);
    EXPECT_FALSE(reattached.ok()) << what;
  };

  expect_rejected(std::string(), "empty file");
  expect_rejected(good.substr(0, 40), "shorter than the header");
  expect_rejected(good.substr(0, good.size() - 8), "truncated payload");
  {
    std::string bad = good;
    bad[16] ^= 0x01;  // bucket_width field: header checksum must catch it
    expect_rejected(bad, "corrupt header byte");
  }
  {
    std::string bad = good;
    bad[good.size() - 1] ^= 0x01;  // payload checksum must catch it
    expect_rejected(bad, "corrupt payload byte");
  }
  {
    std::string bad = good;
    bad[0] = 'X';  // magic
    expect_rejected(bad, "foreign magic");
  }
  {
    // A future format version with a valid checksum is still refused.
    std::string bad = good;
    const uint32_t version = 2;
    std::memcpy(bad.data() + 8, &version, sizeof(version));
    const uint64_t checksum = Fnv1a64(bad.data(), 56);
    std::memcpy(bad.data() + 56, &checksum, sizeof(checksum));
    expect_rejected(bad, "future version");
  }
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(ColdTierMmapTest, RejectsBucketWidthMismatch) {
  const std::string path = TempPath("cold_tier_width.stb");
  {
    auto tier = ColdTier::OpenOrCreate(path, /*bucket_width=*/2);
    ASSERT_TRUE(tier.ok());
    ColdFoldUndo undo;
    auto input = SampleFoldInput();
    tier->FoldEvicted(input, /*cutoff=*/6, &undo);
    ASSERT_TRUE(tier->Publish().ok());
  }
  auto mismatched = ColdTier::OpenOrCreate(path, /*bucket_width=*/3);
  EXPECT_FALSE(mismatched.ok());
  EXPECT_TRUE(mismatched.status().IsInvalidArgument());
  std::remove(path.c_str());
}

// -------------------------------------------------------------- ReplayRange

TEST(ReplayTest, ReplayRangeFindsStoredBurst) {
  auto tier = ColdTier::CreateInMemory(/*bucket_width=*/4);
  ASSERT_TRUE(tier.ok());
  // Stream 0: background frequency 1 everywhere, a burst (5s) at times
  // 8..11 — exactly bucket 2. Stream 1: flat.
  std::vector<TermPosting> postings;
  for (Timestamp time = 0; time < 20; ++time) {
    postings.push_back({0, time, time >= 8 && time < 12 ? 5.0 : 1.0});
    postings.push_back({1, time, 1.0});
  }
  std::sort(postings.begin(), postings.end(),
            [](const TermPosting& a, const TermPosting& b) {
              return std::pair(a.stream, a.time) < std::pair(b.stream, b.time);
            });
  std::vector<std::pair<TermId, std::vector<TermPosting>>> removed = {
      {5, std::move(postings)}};
  ColdFoldUndo undo;
  tier->FoldEvicted(removed, /*cutoff=*/20, &undo);
  ASSERT_EQ(tier->bucket_upper_bound(), 5u);

  const ExpectedModelFactory factory = [] {
    return std::make_unique<GlobalMeanModel>();
  };
  auto replayed = ReplayRange(*tier, 5, 0, 5, factory);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  bool found_burst = false;
  for (const ReplayedInterval& interval : *replayed) {
    if (interval.stream == 0 && interval.bucket_begin <= 2 &&
        interval.bucket_end > 2) {
      found_burst = true;
      EXPECT_GT(interval.burstiness, 0.0);
    }
    EXPECT_NE(interval.stream, 1u) << "flat stream must not burst";
  }
  EXPECT_TRUE(found_burst);

  // Span validation.
  EXPECT_TRUE(
      ReplayRange(*tier, 5, 3, 3, factory).status().IsInvalidArgument());
  EXPECT_TRUE(ReplayRange(*tier, 5, 0, 6, factory).status().IsOutOfRange());
}

// --------------------------------------------------------------- stats

TEST(HistoryTickStatsTest, FoldedTermsTracksEvictionAndMode) {
  // kOff: stats stay zero, no tier exists.
  {
    FeedRuntimeOptions opts = WindowedHistoryOptions(HistoryMode::kOff);
    auto runtime = FeedRuntime::Create(MakeSeedCollection(), opts);
    ASSERT_TRUE(runtime.ok());
    EXPECT_EQ(runtime->history(), nullptr);
    Rng rng(1);
    for (int i = 0; i < kTicks; ++i) {
      auto stats = runtime->Tick(MakeSnapshot(rng));
      ASSERT_TRUE(stats.ok());
      EXPECT_EQ(stats->folded_terms, 0u);
    }
  }
  // kInMemory: zero until the window fills, positive on evicting ticks.
  {
    auto runtime = FeedRuntime::Create(
        MakeSeedCollection(), WindowedHistoryOptions(HistoryMode::kInMemory));
    ASSERT_TRUE(runtime.ok());
    Rng rng(1);
    size_t total_folded = 0;
    for (int i = 0; i < kTicks; ++i) {
      auto stats = runtime->Tick(MakeSnapshot(rng));
      ASSERT_TRUE(stats.ok());
      // Non-evicting ticks never fold; evicting ticks may fold zero terms
      // while the (empty) seed prefix drains out of the window.
      if (!stats->evicted) EXPECT_EQ(stats->folded_terms, 0u) << "tick " << i;
      total_folded += stats->folded_terms;
    }
    EXPECT_GT(total_folded, 0u);
    EXPECT_EQ(runtime->history()->folded_until(), runtime->window_start());
  }
}

}  // namespace
}  // namespace stburst
