// Tests for eval/metrics.

#include "stburst/eval/metrics.h"

#include <gtest/gtest.h>

namespace stburst {
namespace {

TEST(JaccardSim, BasicCases) {
  EXPECT_DOUBLE_EQ(JaccardSim({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSim({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSim({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSim({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSim({1}, {}), 0.0);
}

TEST(JaccardSim, DuplicatesCollapse) {
  EXPECT_DOUBLE_EQ(JaccardSim({1, 1, 2, 2}, {1, 2}), 1.0);
}

TEST(StartEndError, AbsoluteDifferences) {
  Interval truth{10, 20};
  EXPECT_DOUBLE_EQ(StartError(truth, Interval{13, 22}, 100), 3.0);
  EXPECT_DOUBLE_EQ(EndError(truth, Interval{13, 22}, 100), 2.0);
  EXPECT_DOUBLE_EQ(StartError(truth, truth, 100), 0.0);
}

TEST(StartEndError, MissesCostFullTimeline) {
  Interval truth{10, 20};
  EXPECT_DOUBLE_EQ(StartError(truth, Interval{}, 365), 365.0);
  EXPECT_DOUBLE_EQ(EndError(Interval{}, truth, 365), 365.0);
}

TEST(PrecisionAtK, CountsRelevantPrefix) {
  std::vector<bool> rel = {true, true, false, true, false};
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 5), 0.6);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 2), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 3), 2.0 / 3.0);
  // Shorter ranking than k: evaluated over what exists.
  EXPECT_DOUBLE_EQ(PrecisionAtK({true}, 10), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, 10), 0.0);
}

TEST(TopKOverlap, PaperStyleSimilarity) {
  std::vector<DocId> a = {1, 2, 3, 4, 5};
  std::vector<DocId> b = {4, 5, 6, 7, 8};
  EXPECT_DOUBLE_EQ(TopKOverlap(a, b, 5), 0.4);
  EXPECT_DOUBLE_EQ(TopKOverlap(a, a, 5), 1.0);
  EXPECT_DOUBLE_EQ(TopKOverlap(a, b, 0), 0.0);
  // Only the first k entries of each list count.
  EXPECT_DOUBLE_EQ(TopKOverlap({1, 9}, {9, 1}, 1), 0.0);
}

TEST(Mean, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

}  // namespace
}  // namespace stburst
